package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotpathMarker is the annotation that opts a function into the
// zero-allocation contract. It goes in the function's doc comment:
//
//	//lint:hotpath
//	func (e *Engine) Run() error { ... }
//
// The contract is transitive: everything the function statically calls
// within the module is checked too, because an allocation two frames down
// is still an allocation per step. The walk stops at dynamic calls
// (function values, interface methods) and at the standard library.
const hotpathMarker = "//lint:hotpath"

// hotallocAnalyzer enforces zero allocation in //lint:hotpath functions
// and their static in-module callees. It flags the constructs that make
// the Go compiler allocate: slice/map composite literals, &T{...},
// make/new, append into a slice that is not a preallocated scratch
// buffer, closures that capture variables, string↔[]byte conversions,
// interface boxing at call sites (fmt.* categorically), and map writes.
// The fix is gostata-style: hang scratch buffers off the receiver, reuse
// them with x = x[:0], and intern map keys into slice indices. Amortized
// allocations (e.g. a doubling resize) are annotated //lint:allow
// hotalloc with the amortization argument as the reason, and every fixed
// loop is pinned by an env-gated testing.AllocsPerRun == 0 test.
func hotallocAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "forbid allocation-inducing constructs in //lint:hotpath functions and their static callees",
	}
	// The hot set spans packages, so it is computed once per run from the
	// full load and reused by every per-package pass.
	var (
		decls map[*types.Func]declSite
		roots map[*types.Func]*types.Func
	)
	a.Run = func(p *Pass) {
		if decls == nil {
			decls = funcDecls(p.All)
			roots = hotSet(decls)
		}
		for fn, root := range roots {
			site := decls[fn]
			if site.Pkg != p.Pkg {
				continue // reported by the declaring package's own pass
			}
			how := "in //lint:hotpath " + fn.Name()
			if root != fn {
				how = "in " + fn.Name() + ", statically reachable from //lint:hotpath " + root.Name()
			}
			checkHotBody(p, site.Decl, how)
		}
	}
	return a
}

// isHotMarked reports whether the declaration's doc comment carries the
// //lint:hotpath marker.
func isHotMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

// hotSet maps every function in the hot set to the marked root it is
// reachable from (itself, if directly marked). Seeds are processed in
// name order so a function reachable from two roots is always attributed
// to the same one — diagnostics must not depend on map iteration.
func hotSet(decls map[*types.Func]declSite) map[*types.Func]*types.Func {
	var seeds []*types.Func
	for fn, site := range decls {
		if isHotMarked(site.Decl) {
			seeds = append(seeds, fn)
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].FullName() < seeds[j].FullName() })

	roots := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, fn := range seeds {
		roots[fn] = fn
		queue = append(queue, fn)
	}
	var scratch []*types.Func
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		scratch = staticCallees(decls[fn], scratch[:0])
		for _, callee := range scratch {
			if _, declared := decls[callee]; !declared {
				continue // stdlib or bodiless: the walk stops here
			}
			if _, seen := roots[callee]; seen {
				continue
			}
			roots[callee] = roots[fn]
			queue = append(queue, callee)
		}
	}
	return roots
}

// acceptedAppendDsts collects the objects that count as preallocated
// append destinations inside fd: the receiver, parameters, named results,
// and locals assigned from an accepted expression (a re-slice, a field, an
// element, or an append chain rooted at one). Appending into any of these
// reuses caller- or receiver-owned backing storage; appending into a fresh
// local grows a new slice every call.
func acceptedAppendDsts(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	accepted := map[types.Object]bool{}
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params, fd.Type.Results} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if o := info.Defs[name]; o != nil {
					accepted[o] = true
				}
			}
		}
	}
	var acceptedExpr func(e ast.Expr) bool
	acceptedExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			return true // field access: receiver-owned scratch by contract
		case *ast.SliceExpr:
			return true // re-slice reuses existing backing storage
		case *ast.IndexExpr:
			return true // element of existing storage
		case *ast.Ident:
			return accepted[info.Uses[e]]
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
					return acceptedExpr(e.Args[0])
				}
			}
		}
		return false
	}
	// Forward pass: a local becomes accepted at its (re)assignment from an
	// accepted expression. Syntactic order matches evaluation order for
	// the straight-line scratch-setup code this models.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || !acceptedExpr(as.Rhs[i]) {
				continue
			}
			if o := info.Defs[id]; o != nil {
				accepted[o] = true
			}
			if o := info.Uses[id]; o != nil {
				accepted[o] = true
			}
		}
		return true
	})
	return accepted
}

// checkHotBody walks one hot function's body and reports every
// allocation-inducing construct, each message suffixed with how the
// function entered the hot set.
func checkHotBody(p *Pass, fd *ast.FuncDecl, how string) {
	info := p.Pkg.Info
	accepted := acceptedAppendDsts(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				p.Report(n, "slice literal allocates %s; hoist it to a scratch field and reuse with x = x[:0]", how)
			case *types.Map:
				p.Report(n, "map literal allocates %s; build it once at construction time", how)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Report(n, "&composite literal escapes to the heap %s; reuse a scratch value on the receiver", how)
				}
			}
		case *ast.FuncLit:
			if v := capturedVar(info, n, fd); v != nil {
				p.Report(n, "closure captures %s and allocates %s; pass state explicitly or hoist the closure", v.Name(), how)
			}
		case *ast.IncDecStmt:
			reportMapWrite(p, n.X, how)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportMapWrite(p, lhs, how)
			}
		case *ast.CallExpr:
			checkHotCall(p, n, accepted, how)
		}
		return true
	})
}

// reportMapWrite flags an assignment target that writes through a map:
// map inserts rehash and allocate, and steady-state loops should intern
// keys into slice indices instead.
func reportMapWrite(p *Pass, lhs ast.Expr, how string) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if t := p.TypeOf(ix.X); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			p.Report(lhs, "map write %s; maps rehash and allocate on insert — intern keys into slice indices", how)
		}
	}
}

// checkHotCall handles the call-shaped allocation sources: make/new,
// append into a fresh slice, string↔[]byte conversions, fmt.*, and
// interface boxing of concrete arguments.
func checkHotCall(p *Pass, call *ast.CallExpr, accepted map[types.Object]bool, how string) {
	info := p.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				p.Report(call, "make allocates %s; preallocate at construction time and reuse", how)
			case "new":
				p.Report(call, "new allocates %s; reuse a scratch value on the receiver", how)
			case "append":
				if len(call.Args) > 0 && !appendDstAccepted(info, call.Args[0], accepted) {
					p.Report(call, "append into a fresh slice grows per call %s; append into preallocated scratch (x = x[:0]) instead", how)
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		reportConversion(p, call, tv.Type, info.TypeOf(call.Args[0]), how)
		return
	}
	fn := calledFunc(p, call)
	if fn == nil {
		return
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		p.Report(call, "fmt.%s formats through interfaces and allocates %s; hot paths must not format", fn.Name(), how)
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice packs nothing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue // generic instantiation, not interface boxing
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		p.Report(arg, "passing %s as interface %s boxes and may allocate %s", at, pt, how)
	}
}

// appendDstAccepted reports whether an append destination expression
// reuses existing backing storage.
func appendDstAccepted(info *types.Info, dst ast.Expr, accepted map[types.Object]bool) bool {
	switch dst := ast.Unparen(dst).(type) {
	case *ast.SelectorExpr, *ast.SliceExpr, *ast.IndexExpr:
		return true
	case *ast.Ident:
		return accepted[info.Uses[dst]]
	}
	return false
}

// reportConversion flags string↔[]byte (and []rune) conversions, which
// copy their operand through a fresh allocation.
func reportConversion(p *Pass, call *ast.CallExpr, to, from types.Type, how string) {
	if from == nil {
		return
	}
	if isStringish(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isStringish(from) {
		p.Report(call, "%s(%s) conversion copies and allocates %s; keep one representation through the loop", to, from, how)
	}
}

func isStringish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// capturedVar returns a variable the literal captures from its enclosing
// function, or nil. Non-capturing literals compile to plain functions and
// cost nothing; a capture forces a heap-allocated closure object.
func capturedVar(info *types.Info, lit *ast.FuncLit, outer *ast.FuncDecl) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() < outer.Pos() || v.Pos() > outer.End() {
			return true // package-level or foreign: no closure cell
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // the literal's own declaration
		}
		captured = v
		return false
	})
	return captured
}
