package lint

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// TestJSONOutput pins the machine-readable mode CI uploads as an
// artifact: one JSON object per finding per line, same findings and exit
// code as the text mode.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain via go list")
	}
	var text, jsonBuf, errb bytes.Buffer
	if exit := Run(".", []string{"./testdata/src/floateq_bad"}, false, &text, &errb); exit != 1 {
		t.Fatalf("text exit = %d, want 1 (stderr: %s)", exit, errb.String())
	}
	if exit := Run(".", []string{"./testdata/src/floateq_bad"}, true, &jsonBuf, &errb); exit != 1 {
		t.Fatalf("json exit = %d, want 1 (stderr: %s)", exit, errb.String())
	}
	textLines := strings.Split(strings.TrimSpace(text.String()), "\n")
	jsonLines := strings.Split(strings.TrimSpace(jsonBuf.String()), "\n")
	if len(jsonLines) != len(textLines) {
		t.Fatalf("json mode emitted %d findings, text mode %d", len(jsonLines), len(textLines))
	}
	for _, line := range jsonLines {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("unparseable JSON finding %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("JSON finding with empty field: %q", line)
		}
	}
}

func TestDirectiveValidation(t *testing.T) {
	pkg := Module + "/internal/fixture"

	t.Run("unknown_analyzer_reported", func(t *testing.T) {
		runFixture(t, Analyzers(), fixturePkg{pkg, `package fixture
//lint:allow nosuchcheck because reasons // want "directive: malformed directive"
func F() {}
`})
	})
	t.Run("missing_reason_reported", func(t *testing.T) {
		// A reasonless directive is itself reported AND suppresses nothing,
		// so the draw below it still surfaces.
		runFixture(t, Analyzers(), fixturePkg{pkg, `package fixture
import "math/rand"
func Draw() int {
	//lint:allow nondeterm
	// want(-1) "needs a reason"
	return rand.Intn(10) // want "nondeterm: global math/rand.Intn"
}
`})
	})
	t.Run("directive_does_not_leak_past_next_line", func(t *testing.T) {
		runFixture(t, Analyzers(), fixturePkg{pkg, `package fixture
import "math/rand"
func Draw() int {
	//lint:allow nondeterm only the next line is excused
	a := rand.Intn(10)
	b := rand.Intn(10) // want "nondeterm: global math/rand.Intn"
	return a + b
}
`})
	})
	t.Run("directive_scoped_to_one_analyzer", func(t *testing.T) {
		runFixture(t, Analyzers(), fixturePkg{pkg, `package fixture
import "math/rand"
func Mix(a, b float64) bool {
	//lint:allow nondeterm excused draw, but not the comparison below
	return float64(rand.Intn(10)) == a*b // want "floateq: exact floating-point == comparison"
}
`})
	})
}

func TestDirectiveEdgeCases(t *testing.T) {
	pkg := Module + "/internal/fixture"

	t.Run("block_comment_directive_is_inert", func(t *testing.T) {
		// Only line comments carry directives: a block comment that spells
		// one out suppresses nothing (and is not itself a finding — it is
		// just prose).
		runFixture(t, analyzerByName(t, "nondeterm"), fixturePkg{pkg, `package fixture
import "math/rand"
func Draw() int {
	/* lint:allow nondeterm tucked into a block comment */
	return rand.Intn(10) // want "nondeterm: global math/rand.Intn"
}
`})
	})

	t.Run("blank_line_breaks_coverage", func(t *testing.T) {
		// A directive covers its own line and the next; a blank line in
		// between means the finding survives AND the directive is stale.
		runFixture(t, analyzerByName(t, "nondeterm"), fixturePkg{pkg, `package fixture
import "math/rand"
func Draw() int {
	//lint:allow nondeterm does not reach past the blank line // want "stale //lint:allow nondeterm"

	return rand.Intn(10) // want "nondeterm: global math/rand.Intn"
}
`})
	})

	t.Run("two_analyzers_allowed_on_one_line", func(t *testing.T) {
		// One directive above plus one trailing covers a line that trips
		// two analyzers at once; both are used, so neither is stale.
		runFixture(t, Analyzers(), fixturePkg{pkg, `package fixture
import "math/rand"
func Mix(a, b float64) bool {
	//lint:allow floateq quantized comparison audited by hand
	return float64(rand.Intn(10)) == a*b //lint:allow nondeterm demo draw, not an experiment
}
`})
	})

	t.Run("stale_directive_reported", func(t *testing.T) {
		runFixture(t, Analyzers(), fixturePkg{pkg, `package fixture
func F() int {
	//lint:allow nondeterm nothing left to excuse here // want "stale //lint:allow nondeterm: no nondeterm finding"
	return 1
}
`})
	})
}

// TestMainOnFixturePackages drives the real loader + CLI path over the
// compiled fixture packages in testdata: each bad package must produce
// file:line diagnostics and exit 1, and the audited modalKind shape must
// load clean through the same path.
func TestMainOnFixturePackages(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain via go list")
	}
	cases := []struct {
		pattern  string
		wantExit int
		wantSubs []string
	}{
		{"./testdata/src/nondeterm_bad", 1, []string{
			"nondeterm_bad.go", "time.Now", "global math/rand.Intn", "seed expression calls",
		}},
		{"./testdata/src/maporder_bad", 1, []string{
			"maporder_bad.go", "output emitted inside", "never sorted in this function",
		}},
		{"./testdata/src/errdrop_bad", 1, []string{
			"errdrop_bad.go", "error from Write is discarded", "deferred Close discards",
			"error from Schedule is discarded",
		}},
		{"./testdata/src/floateq_bad", 1, []string{
			"floateq_bad.go", "exact floating-point == comparison",
		}},
		{"./testdata/src/hotalloc_bad", 1, []string{
			"hotalloc_bad.go", "make allocates", "append into a fresh slice",
			"statically reachable from //lint:hotpath",
		}},
		{"./testdata/src/seeddomain_bad", 1, []string{
			"seeddomain_bad.go", "raw rand.New constructs an untagged stream",
			"already declared", "must read",
		}},
		// Regression fixture for the audited map range in
		// internal/experiments/capacity_exp.go (modalKind): sorted after
		// collection, so the suite must pass it.
		{"./testdata/src/maporder_modalkind", 0, nil},
	}
	for _, tc := range cases {
		t.Run(strings.TrimPrefix(tc.pattern, "./testdata/src/"), func(t *testing.T) {
			var out, errb bytes.Buffer
			exit := Main(".", []string{tc.pattern}, &out, &errb)
			if exit != tc.wantExit {
				t.Fatalf("Main(%q) exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.pattern, exit, tc.wantExit, out.String(), errb.String())
			}
			for _, sub := range tc.wantSubs {
				if !strings.Contains(out.String(), sub) {
					t.Errorf("output missing %q:\n%s", sub, out.String())
				}
			}
			// Every diagnostic line must carry a clickable file:line:col.
			for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
				if line == "" {
					continue
				}
				if parts := strings.SplitN(line, ":", 4); len(parts) < 4 {
					t.Errorf("diagnostic without file:line:col: %q", line)
				}
			}
		})
	}
}

// TestDiagnosticsSorted pins the deterministic output order the CI gate
// relies on: findings sort by file, then line, then column.
func TestDiagnosticsSorted(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain via go list")
	}
	var out, errb bytes.Buffer
	if exit := Main(".", []string{"./testdata/src/nondeterm_bad", "./testdata/src/floateq_bad"}, &out, &errb); exit != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", exit, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	parse := func(s string) (file string, line int) {
		parts := strings.SplitN(s, ":", 3)
		if len(parts) < 3 {
			t.Fatalf("unparseable diagnostic %q", s)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatalf("unparseable line in %q: %v", s, err)
		}
		return parts[0], n
	}
	for i := 1; i < len(lines); i++ {
		pf, pl := parse(lines[i-1])
		cf, cl := parse(lines[i])
		if pf > cf || (pf == cf && pl > cl) {
			t.Errorf("diagnostics out of order:\n%s\n%s", lines[i-1], lines[i])
		}
	}
}
