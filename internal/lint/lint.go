// Package lint is a stdlib-only static-analysis driver that mechanically
// enforces the repository's determinism contract: the same seed must
// produce byte-identical experiment output at any worker count. Four
// analyzers cover the bug classes that historically break that contract —
// wall-clock reads and process-global randomness (nondeterm), emission in
// map iteration order (maporder), silently dropped writer errors
// (errdrop), and exact floating-point comparison (floateq).
//
// Intentional exceptions are annotated in source:
//
//	//lint:allow <analyzer> <reason>
//
// The directive suppresses that analyzer's findings on its own line and on
// the line immediately below, so it works both as a trailing comment and
// as a standalone comment above the offending statement. The reason is
// mandatory: an unexplained exception is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers is the suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		nondetermAnalyzer(),
		maporderAnalyzer(),
		errdropAnalyzer(),
		floateqAnalyzer(),
	}
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Fset     *token.FileSet
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Report records a finding at the node's position.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(n.Pos()),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shorthand for the package's type info.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

const directivePrefix = "//lint:allow "

// allowKey identifies one suppressed (file line, analyzer) pair.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// directives scans a package's comments for //lint:allow annotations.
// Malformed directives (unknown analyzer, missing reason) are reported as
// findings so the escape hatch cannot silently rot.
func directives(fset *token.FileSet, pkg *Package, known map[string]bool, diags *[]Diagnostic) map[allowKey]bool {
	allowed := map[allowKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSpace(directivePrefix)) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, strings.TrimSpace(directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 || !known[fields[0]] {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("malformed directive %q: want //lint:allow <analyzer> <reason>", c.Text)})
					continue
				}
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("directive %q needs a reason: an unexplained exception is not an exception", c.Text)})
					continue
				}
				for _, l := range []int{pos.Line, pos.Line + 1} {
					allowed[allowKey{pos.Filename, l, fields[0]}] = true
				}
			}
		}
	}
	return allowed
}

// RunAnalyzers runs the suite over every root package and returns findings
// sorted by position, with //lint:allow suppressions applied.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !pkg.Root {
			continue
		}
		var raw []Diagnostic
		allowed := directives(fset, pkg, known, &raw)
		for _, a := range analyzers {
			a.Run(&Pass{Fset: fset, Pkg: pkg, analyzer: a, diags: &raw})
		}
		for _, d := range raw {
			if allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Main is the CLI entry point: load the patterns, run the suite, print
// file:line:col diagnostics, and return the exit code (0 clean, 1
// findings, 2 load failure).
func Main(dir string, patterns []string, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	pkgs, err := LoadInto(fset, dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := RunAnalyzers(fset, pkgs, Analyzers())
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "openspace-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
