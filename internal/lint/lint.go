// Package lint is a stdlib-only static-analysis driver that mechanically
// enforces the repository's correctness contracts: the same seed must
// produce byte-identical experiment output at any worker count, hot
// kernels must not allocate, and neither of those disciplines may
// introduce aliasing or sharing bugs of its own. Eight analyzers cover
// the bug classes that historically break the contracts — wall-clock
// reads and process-global randomness (nondeterm), emission in map
// iteration order (maporder), silently dropped writer errors (errdrop),
// exact floating-point comparison (floateq), allocation in //lint:hotpath
// kernels (hotalloc), untagged or colliding RNG streams (seeddomain),
// scratch buffers escaping their owner (scratchsafe), and non-disjoint
// writes from pool-task closures (poolshare).
//
// Intentional exceptions are annotated in source:
//
//	//lint:allow <analyzer> <reason>
//
// The directive suppresses that analyzer's findings on its own line and on
// the line immediately below, so it works both as a trailing comment and
// as a standalone comment above the offending statement. The reason is
// mandatory: an unexplained exception is itself reported.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers is the suite in reporting order. Each call returns fresh
// instances: the flow-aware analyzers (hotalloc's and scratchsafe's
// hot-function sets, seeddomain's repo-wide domain registry) accumulate
// state across the packages of one RunAnalyzers call, so analyzer values
// must not be shared between runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		nondetermAnalyzer(),
		maporderAnalyzer(),
		errdropAnalyzer(),
		floateqAnalyzer(),
		hotallocAnalyzer(),
		seeddomainAnalyzer(),
		scratchsafeAnalyzer(),
		poolshareAnalyzer(),
	}
}

// Select resolves a comma-separated analyzer subset against the full
// suite, preserving suite order. An empty spec selects everything; an
// unknown name is an error so a typo in CI cannot silently skip a check.
func Select(spec string) ([]*Analyzer, error) {
	all := Analyzers()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want[name] = true
	}
	var out []*Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("lint: unknown analyzer(s) %s (known: %s)", strings.Join(unknown, ", "), strings.Join(analyzerNames(all), ", "))
	}
	return out, nil
}

func analyzerNames(as []*Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's run over one package. All holds every
// loaded package — roots and module-internal dependencies — so flow-aware
// analyzers can follow calls across package boundaries; findings are
// still only reported against the pass's own package.
type Pass struct {
	Fset     *token.FileSet
	Pkg      *Package
	All      []*Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Report records a finding at the node's position.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(n.Pos()),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant shorthand for the package's type info.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

const directivePrefix = "//lint:allow "

// allowKey identifies one suppressed (file line, analyzer) pair.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowDirective is one well-formed //lint:allow annotation: the lines it
// covers, and whether it ever suppressed a finding (a directive that
// suppresses nothing is itself reported — dead exceptions rot the
// contract).
type allowDirective struct {
	pos      token.Position
	analyzer string
	used     bool
}

// directives scans a package's comments for //lint:allow annotations.
// Malformed directives (unknown analyzer, missing reason) are reported as
// findings so the escape hatch cannot silently rot. Only line comments
// participate: a directive buried in a /* block comment */ is inert.
func directives(fset *token.FileSet, pkg *Package, known map[string]bool, diags *[]Diagnostic) []*allowDirective {
	var out []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSpace(directivePrefix)) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, strings.TrimSpace(directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 || !known[fields[0]] {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("malformed directive %q: want //lint:allow <analyzer> <reason>", c.Text)})
					continue
				}
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("directive %q needs a reason: an unexplained exception is not an exception", c.Text)})
					continue
				}
				out = append(out, &allowDirective{pos: pos, analyzer: fields[0]})
			}
		}
	}
	return out
}

// RunAnalyzers runs the given analyzers over every root package and
// returns findings sorted by position, with //lint:allow suppressions
// applied and stale directives — ones that no longer suppress anything —
// reported. Directive validation is subset-aware: a directive naming any
// analyzer of the full suite is well-formed even when that analyzer is
// not in this run, and staleness is only judged for analyzers that
// actually ran (a subset run cannot tell whether a skipped analyzer's
// directive still earns its keep).
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if !pkg.Root {
			continue
		}
		var raw []Diagnostic
		dirs := directives(fset, pkg, known, &raw)
		allowed := map[allowKey]*allowDirective{}
		for _, d := range dirs {
			for _, l := range []int{d.pos.Line, d.pos.Line + 1} {
				allowed[allowKey{d.pos.Filename, l, d.analyzer}] = d
			}
		}
		for _, a := range analyzers {
			a.Run(&Pass{Fset: fset, Pkg: pkg, All: pkgs, analyzer: a, diags: &raw})
		}
		for _, d := range raw {
			if dir := allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; dir != nil {
				dir.used = true
				continue
			}
			diags = append(diags, d)
		}
		for _, d := range dirs {
			if !d.used && ran[d.analyzer] {
				diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "directive",
					Message: fmt.Sprintf("stale //lint:allow %s: no %s finding on this line or the next; delete the directive", d.analyzer, d.analyzer)})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Main is the CLI entry point: load the patterns, run the suite, print
// file:line:col diagnostics, and return the exit code (0 clean, 1
// findings, 2 load failure).
func Main(dir string, patterns []string, stdout, stderr io.Writer) int {
	return Run(dir, patterns, false, stdout, stderr)
}

// jsonDiagnostic is the machine-readable rendering of one finding: one
// JSON object per line, stable field order, for CI artifacts and tooling.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Run is Main with an output selector: human-readable file:line:col text,
// or JSON lines when jsonOut is set. Exit codes are identical either way
// (0 clean, 1 findings, 2 load failure).
func Run(dir string, patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	return RunSelected(dir, patterns, jsonOut, Analyzers(), stdout, stderr)
}

// RunSelected is Run restricted to the given analyzers — the engine
// behind the CLI's -analyzers subset flag. Exit codes are unchanged from
// the full run (0 clean, 1 findings, 2 load failure).
func RunSelected(dir string, patterns []string, jsonOut bool, analyzers []*Analyzer, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	pkgs, err := LoadInto(fset, dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := RunAnalyzers(fset, pkgs, analyzers)
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		if jsonOut {
			if err := enc.Encode(jsonDiagnostic{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			}); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			continue
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "openspace-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
