package lint

import "testing"

func TestNondeterm(t *testing.T) {
	nd := analyzerByName(t, "nondeterm")
	internalPkg := Module + "/internal/fixture"

	cases := []struct {
		name string
		pkgs []fixturePkg
	}{
		{"time_now_flagged", []fixturePkg{{internalPkg, `package fixture
import "time"
func Stamp() time.Time {
	return time.Now() // want "nondeterm: time.Now makes output depend on the wall clock"
}
`}}},
		{"global_rand_flagged", []fixturePkg{{internalPkg, `package fixture
import "math/rand"
func Draw() int {
	return rand.Intn(10) // want "nondeterm: global math/rand.Intn"
}
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "nondeterm: global math/rand.Shuffle"
}
`}}},
		{"task_owned_rng_clean", []fixturePkg{{internalPkg, `package fixture
import "math/rand"
func Draw(rng *rand.Rand) int { return rng.Intn(10) }
`}}},
		{"plumbed_seed_clean", []fixturePkg{{internalPkg, `package fixture
import "math/rand"
type Config struct{ Seed int64 }
func New(cfg Config) *rand.Rand { return rand.New(rand.NewSource(cfg.Seed)) }
func NewConst() *rand.Rand      { return rand.New(rand.NewSource(42)) }
func NewArith(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(uint64(seed) ^ 0x9e3779b9)))
}
`}}},
		{"derived_seed_clean", []fixturePkg{execStub, {internalPkg, `package fixture
import (
	"math/rand"
	"github.com/openspace-project/openspace/internal/exec"
)
func New(base int64, task int) *rand.Rand {
	return rand.New(rand.NewSource(exec.Seed(base, int64(task))))
}
func Child(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63()))
}
`}}},
		{"wallclock_seed_flagged", []fixturePkg{{internalPkg, `package fixture
import (
	"math/rand"
	"time"
)
func New() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "nondeterm: seed expression calls" "nondeterm: time.Now"
}
`}}},
		{"arbitrary_call_seed_flagged", []fixturePkg{{internalPkg, `package fixture
import "math/rand"
func pick() int64 { return 3 }
func New() *rand.Rand {
	return rand.New(rand.NewSource(pick())) // want "nondeterm: seed expression calls"
}
`}}},
		{"allow_directive_trailing", []fixturePkg{{internalPkg, `package fixture
import "math/rand"
func Draw() int {
	return rand.Intn(10) //lint:allow nondeterm demo code outside any experiment path
}
`}}},
		{"allow_directive_standalone", []fixturePkg{{internalPkg, `package fixture
import "math/rand"
func Draw() int {
	//lint:allow nondeterm demo code outside any experiment path
	return rand.Intn(10)
}
`}}},
		{"outside_internal_ignored", []fixturePkg{{Module + "/examples/demo", `package demo
import "math/rand"
func Draw() int { return rand.Intn(10) }
`}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runFixture(t, nd, tc.pkgs...) })
	}
}
