package lint

import (
	"go/ast"
	"go/types"
)

// maporderAnalyzer flags the exact bug class the serial-vs-parallel CSV
// diff exists to catch: rows emitted in map iteration order. Two shapes
// are reported — writing output from inside a `range` over a map, and
// collecting map keys into a slice that is never passed to sort.* /
// slices.* afterwards in the same function. The blessed idiom (collect
// keys, sort, iterate the sorted slice) is untouched.
func maporderAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "flag output emitted in map iteration order and map-key collections that skip sorting",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFuncMapOrder(p, fd.Body)
			}
		}
	}
	return a
}

func checkFuncMapOrder(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := p.TypeOf(rs.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		iterVars := rangeVarObjects(p, rs)
		checkRangeBody(p, body, rs, iterVars)
		return true
	})
}

// rangeVarObjects collects the objects bound by a range statement's key
// and value variables.
func rangeVarObjects(p *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.ObjectOf(id); obj != nil {
				objs[obj] = true
			}
		}
	}
	return objs
}

// checkRangeBody looks inside one map-range body for emission calls and
// unsorted key collection.
func checkRangeBody(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, iterVars map[types.Object]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs {
				return false // the nested range gets its own visit
			}
		case *ast.CallExpr:
			if isEmitCall(p, n) {
				p.Report(n, "output emitted inside `range` over a map runs in nondeterministic iteration order; collect the keys, sort them, then emit")
				return true
			}
		case *ast.AssignStmt:
			if tgt := appendTarget(p, n, iterVars); tgt != nil && !sortedAfter(p, fnBody, rs, tgt) {
				p.Report(n, "map keys collected into %q are never sorted in this function; call sort.* (or slices.Sort*) on it before the slice is emitted or returned", tgt.Name())
			}
		}
		return true
	})
}

// isEmitCall reports whether the call writes user-visible output: a
// fmt.Print*/Fprint* call or a Write*-family method (io.Writer, csv.Writer,
// strings.Builder, ...).
func isEmitCall(p *Pass, call *ast.CallExpr) bool {
	fn := calledFunc(p, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && fn.Type().(*types.Signature).Recv() == nil {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteAll":
		return true
	}
	return false
}

// appendTarget matches `s = append(s, ...)` where an argument mentions a
// range variable, returning s's object.
func appendTarget(p *Pass, as *ast.AssignStmt, iterVars map[types.Object]bool) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || p.ObjectOf(id) != types.Universe.Lookup("append") {
		return nil
	}
	mentions := false
	for _, arg := range call.Args[1:] {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && iterVars[p.ObjectOf(id)] {
				mentions = true
			}
			return !mentions
		})
	}
	if !mentions {
		return nil
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return p.ObjectOf(lhs)
}

// sortedAfter reports whether, after the range statement, the enclosing
// function passes the collected slice to any sort or slices function.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, tgt types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calledFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.ObjectOf(id) == tgt {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
