package lint

import "testing"

func TestScratchsafe(t *testing.T) {
	pkg := Module + "/internal/fixture"

	t.Run("untagged_fields_are_ignored", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "scratchsafe"), fixturePkg{pkg, `package fixture

type plain struct{ buf []int }

func (p *plain) Grab() []int { return p.buf } // no //lint:scratch tag: fine
`})
	})

	t.Run("escape_channels_in_scratch_methods", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "scratchsafe"), fixturePkg{pkg, `package fixture

var global []int

type sink struct{ kept []int }

type kernel struct {
	buf []int //lint:scratch
	n   int
}

func (k *kernel) Grab() []int {
	return k.buf // want "returns memory aliasing scratch field buf"
}

func (k *kernel) Reslice(n int) []int {
	return k.buf[:n] // want "returns memory aliasing scratch field buf"
}

func (k *kernel) Leak() {
	global = k.buf // want "stores memory aliasing scratch field buf into package-level global"
}

func (k *kernel) Stash(s *sink) {
	s.kept = k.buf // want "stores memory aliasing scratch field buf into a non-receiver struct"
}

func (k *kernel) Rehome() {
	k.buf = append(k.buf, 1) // receiver rehoming: the blessed idiom
	k.n = len(k.buf)
}
`})
	})

	t.Run("taint_flows_through_locals_and_appends", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "scratchsafe"), fixturePkg{pkg, `package fixture

type kernel struct {
	buf []int //lint:scratch
}

func (k *kernel) Grow(n int) []int {
	out := k.buf[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	k.buf = out
	return out // want "returns memory aliasing scratch field buf"
}

func (k *kernel) Copied(n int) []int {
	fresh := make([]int, n)
	copy(fresh, k.buf)
	return fresh // a copy is caller-owned: fine
}
`})
	})

	t.Run("named_results_and_closures", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "scratchsafe"), fixturePkg{pkg, `package fixture

type kernel struct {
	buf []int //lint:scratch
}

func (k *kernel) IntoResult(n int) (out []int) {
	out = k.buf[:n] // want "assigns memory aliasing scratch field buf to result out"
	return out
}

func (k *kernel) Closure() func() int {
	return func() int { return len(k.buf) } // want "returned closure captures scratch field buf"
}

func (k *kernel) SyncClosureIsFine(sorter func(func(i, j int) bool)) {
	sorter(func(i, j int) bool { return k.buf[i] < k.buf[j] })
}
`})
	})

	t.Run("goroutines_and_channels", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "scratchsafe"), fixturePkg{pkg, `package fixture

type kernel struct {
	buf []int //lint:scratch
}

func (k *kernel) Spawn(ch chan []int) {
	go func() { _ = k.buf[0] }() // want "goroutine captures scratch field buf"
	ch <- k.buf                  // want "sends memory aliasing scratch field buf into a channel"
}
`})
	})

	t.Run("hotpath_functions_are_checked_without_tagged_receiver", func(t *testing.T) {
		// A //lint:hotpath method of an untagged type still may not leak
		// another type's scratch: the hot set and the scratch index are
		// independent inputs.
		runFixture(t, analyzerByName(t, "scratchsafe"), fixturePkg{pkg, `package fixture

type store struct {
	tmp []byte //lint:scratch
}

type engine struct{ s *store }

//lint:hotpath
func (e *engine) Step() []byte {
	return e.s.tmp // want "returns memory aliasing scratch field tmp in //lint:hotpath Step"
}
`})
	})

	t.Run("transitive_hot_callees_agree_with_hotalloc", func(t *testing.T) {
		// The same static call-graph walk hotalloc uses: a helper reached
		// from a //lint:hotpath root is in scratchsafe's checked set too.
		runFixture(t, analyzerByName(t, "scratchsafe"), fixturePkg{pkg, `package fixture

type kernel struct {
	buf []int //lint:scratch
}

type driver struct{ k *kernel }

//lint:hotpath
func (d *driver) Run() []int { return helper(d.k) }

func helper(k *kernel) []int {
	return k.buf // want "returns memory aliasing scratch field buf in helper, statically reachable from //lint:hotpath Run"
}
`})
	})

	t.Run("allow_suppresses_with_reason", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "scratchsafe"), fixturePkg{pkg, `package fixture

type kernel struct {
	buf []int //lint:scratch
}

func (k *kernel) Peek() []int {
	//lint:allow scratchsafe caller is the owner's own test hook and copies immediately
	return k.buf
}
`})
	})
}
