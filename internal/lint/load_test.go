package lint

import (
	"go/types"
	"testing"
)

// The call-graph walk (funcDecls + staticCallees + hotSet) underpins both
// hotalloc and scratchsafe: every function it reaches inherits the
// zero-alloc and scratch-ownership contracts. These tests pin its edge
// cases — what resolves, what is documented as unresolved, and that the
// two analyzers can never disagree about reachability because they share
// the one walk.

// graphFuncs computes the fixture's declaration index and hot set, plus a
// by-name lookup (fixture function names are unique per test).
func graphFuncs(t *testing.T, src string) (map[*types.Func]declSite, map[*types.Func]*types.Func, func(string) *types.Func) {
	t.Helper()
	pkgs := typecheckFixtures(t, 1, fixturePkg{path: Module + "/callgraph", src: src})
	decls := funcDecls(pkgs)
	roots := hotSet(decls)
	byName := func(name string) *types.Func {
		t.Helper()
		var found *types.Func
		for fn := range decls {
			if fn.Name() == name {
				if found != nil {
					t.Fatalf("two declarations named %s in fixture", name)
				}
				found = fn
			}
		}
		if found == nil {
			t.Fatalf("no declaration named %s in fixture", name)
		}
		return found
	}
	return decls, roots, byName
}

// TestCallGraphMethodValueUnresolved: a method value (f := s.Target; f())
// is dynamic dispatch — the call site's identifier resolves to a variable,
// not a *types.Func — so the walk stops and Target stays out of the hot
// set. The same method called directly is in.
func TestCallGraphMethodValueUnresolved(t *testing.T) {
	_, roots, byName := graphFuncs(t, `package callgraph

type S struct{ n int }

func (s *S) Target() { s.n++ }

//lint:hotpath
func ViaValue(s *S) {
	f := s.Target
	f()
}

//lint:hotpath
func Direct(s *S) {
	s.Target()
}
`)
	if _, hot := roots[byName("Target")]; !hot {
		t.Fatal("Target called directly from a hot root must be in the hot set")
	}
	if got := roots[byName("Target")]; got != byName("Direct") {
		t.Fatalf("Target attributed to %s, want Direct (the only resolving caller)", got.Name())
	}
	if got := roots[byName("ViaValue")]; got != byName("ViaValue") {
		t.Fatal("ViaValue is a marked root and must map to itself")
	}
}

// TestCallGraphMethodValueOnlyCallerStops: with no direct caller at all,
// the method-value indirection keeps the callee entirely out of the set —
// the documented limitation, not an accident.
func TestCallGraphMethodValueOnlyCallerStops(t *testing.T) {
	_, roots, byName := graphFuncs(t, `package callgraph

type S struct{ n int }

func (s *S) Target() { s.n++ }

//lint:hotpath
func ViaValue(s *S) {
	f := s.Target
	f()
}
`)
	if _, hot := roots[byName("Target")]; hot {
		t.Fatal("method value call must not resolve: Target should be outside the hot set")
	}
	if len(roots) != 1 {
		t.Fatalf("hot set has %d entries, want only the marked root", len(roots))
	}
}

// TestCallGraphInterfaceCallUnresolved: a call through an interface
// resolves to the interface method object, which has no body and no entry
// in the declaration index — the walk stops there and the concrete
// implementation is not pulled in.
func TestCallGraphInterfaceCallUnresolved(t *testing.T) {
	decls, roots, byName := graphFuncs(t, `package callgraph

type Doer interface{ Do() }

type Impl struct{ n int }

func (m *Impl) Do() { m.n++ }

//lint:hotpath
func Root(d Doer) {
	d.Do()
}
`)
	if _, hot := roots[byName("Do")]; hot {
		t.Fatal("interface dispatch must not resolve: Impl.Do should be outside the hot set")
	}
	// The interface method IS collected as a static callee (the type
	// checker pins the *types.Func), but having no declaration it cannot
	// extend the walk — pin the mechanism, not just the outcome.
	site := decls[byName("Root")]
	for _, callee := range staticCallees(site, nil) {
		if _, declared := decls[callee]; declared {
			t.Fatalf("Root's only callee is an interface method; resolved %s unexpectedly", callee.FullName())
		}
	}
}

// TestCallGraphMutualRecursionTerminates: Ping ↔ Pong cycle through a
// marked root. The BFS must terminate (the roots map doubles as the seen
// set) and attribute both to the one root.
func TestCallGraphMutualRecursionTerminates(t *testing.T) {
	_, roots, byName := graphFuncs(t, `package callgraph

//lint:hotpath
func Ping(n int) {
	if n > 0 {
		Pong(n - 1)
	}
}

func Pong(n int) {
	if n > 0 {
		Ping(n - 1)
	}
}
`)
	if len(roots) != 2 {
		t.Fatalf("hot set has %d entries, want Ping and Pong", len(roots))
	}
	ping := byName("Ping")
	if roots[ping] != ping {
		t.Fatal("Ping must map to itself")
	}
	if roots[byName("Pong")] != ping {
		t.Fatal("Pong must be attributed to Ping through the cycle")
	}
}

// TestCallGraphRootAttributionDeterministic: a helper reachable from two
// marked roots is always attributed to the FullName-ordered first one,
// never to whichever map iteration happened to visit first.
func TestCallGraphRootAttributionDeterministic(t *testing.T) {
	for i := 0; i < 8; i++ {
		_, roots, byName := graphFuncs(t, `package callgraph

func Shared() {}

//lint:hotpath
func Alpha() { Shared() }

//lint:hotpath
func Beta() { Shared() }
`)
		if got := roots[byName("Shared")]; got != byName("Alpha") {
			t.Fatalf("Shared attributed to %s, want Alpha (FullName-ordered first seed)", got.Name())
		}
	}
}

// TestHotReachabilityAgreement: hotalloc and scratchsafe run over the same
// fixture and report the same transitive callee with the same "statically
// reachable from" attribution — the shared hotSet walk is what makes the
// two contracts coextensive.
func TestHotReachabilityAgreement(t *testing.T) {
	src := `package callgraph

type K struct {
	buf []int //lint:scratch
}

//lint:hotpath
func (k *K) Step() {
	k.helper()
}

var sink []int

func (k *K) helper() {
	tmp := make([]int, 4) // want "make allocates in helper, statically reachable from //lint:hotpath Step"
	k.buf = tmp
	sink = k.buf // want "stores memory aliasing scratch field buf into package-level sink in helper, statically reachable from //lint:hotpath Step"
}
`
	runFixture(t, append(analyzerByName(t, "hotalloc"), analyzerByName(t, "scratchsafe")...),
		fixturePkg{path: Module + "/callgraph", src: src})
}
