package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The stdlib source importer recompiles imported packages from GOROOT
// source, so every test shares one instance (and the FileSet it is bound
// to) to pay that cost once per `go test` run.
var (
	testFset        = token.NewFileSet()
	testImporterMu  sync.Mutex
	testImporterVal types.Importer
)

func testStdImporter() types.Importer {
	testImporterMu.Lock()
	defer testImporterMu.Unlock()
	if testImporterVal == nil {
		testImporterVal = importer.ForCompiler(testFset, "source", nil)
	}
	return testImporterVal
}

// fixturePkg is one embedded-source package of a test case. Earlier
// packages in a case are importable by later ones, so tests can stand up
// a stand-in internal/exec next to the package under analysis.
type fixturePkg struct {
	path string
	src  string
}

// execStub mirrors the signatures of the real derivation helpers so
// nondeterm and seeddomain fixtures can exercise the blessed exec paths
// without loading the whole module.
var execStub = fixturePkg{
	path: Module + "/internal/exec",
	src: `package exec
import "math/rand"
type Domain struct {
	Tag string
	ID  int64
}
func Seed(base int64, coords ...int64) int64 { return base }
func DomainSeed(base int64, d Domain, coords ...int64) int64 { return Seed(base, append([]int64{d.ID}, coords...)...) }
func RNG(base int64, coords ...int64) *rand.Rand { return rand.New(rand.NewSource(Seed(base, coords...))) }
func DomainRNG(base int64, d Domain, coords ...int64) *rand.Rand { return rand.New(rand.NewSource(DomainSeed(base, d, coords...))) }
func Reseed(rng *rand.Rand, base int64, coords ...int64) { rng.Seed(Seed(base, coords...)) }
func ScratchRNG() *rand.Rand { return rand.New(rand.NewSource(0)) }
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		var err error
		if out[i], err = fn(i); err != nil {
			return nil, err
		}
	}
	return out, nil
}
func MapAll[T any](workers, n int, fn func(i int) (T, error)) ([]T, []error, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		var err error
		if out[i], err = fn(i); err != nil {
			return nil, nil, err
		}
	}
	return out, nil, nil
}
func ForEach(workers, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
`,
}

// runFixture type-checks the packages in order, runs the given analyzers
// over the last one, and compares the diagnostics against the `// want
// "substring"` comments embedded in its source. Every diagnostic must be
// wanted and every want must be found.
func runFixture(t *testing.T, analyzers []*Analyzer, pkgs ...fixturePkg) {
	t.Helper()
	runFixtureRoots(t, analyzers, 1, pkgs...)
}

// typecheckFixtures parses and type-checks the fixture packages in order
// (earlier packages import into later ones), marking the last `roots` of
// them as analysis roots. Call-graph tests use the result directly;
// runFixtureRoots layers analyzer execution and want-matching on top.
func typecheckFixtures(t *testing.T, roots int, pkgs ...fixturePkg) []*Package {
	t.Helper()
	li := &loaderImporter{module: Module, cache: map[string]*types.Package{}, std: testStdImporter()}

	var all []*Package
	for i, fp := range pkgs {
		filename := fmt.Sprintf("%s_%s.go", strings.ReplaceAll(path.Base(fp.path), "-", "_"), t.Name()[strings.LastIndex(t.Name(), "/")+1:])
		f, err := parser.ParseFile(testFset, filename, fp.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", fp.path, err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: li}
		tpkg, err := conf.Check(fp.path, testFset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", fp.path, err)
		}
		li.cache[fp.path] = tpkg
		all = append(all, &Package{PkgPath: fp.path, Files: []*ast.File{f}, Types: tpkg, Info: info, Root: i >= len(pkgs)-roots})
	}
	return all
}

// runFixtureRoots is runFixture for the flow-aware analyzers: the last
// `roots` packages are analyzed (earlier ones load as dependencies, so
// cross-package call graphs and domain registries see them), and want
// comments are checked across every analyzed package.
func runFixtureRoots(t *testing.T, analyzers []*Analyzer, roots int, pkgs ...fixturePkg) {
	t.Helper()
	all := typecheckFixtures(t, roots, pkgs...)
	got := RunAnalyzers(testFset, all, analyzers)
	for _, pkg := range all {
		if !pkg.Root {
			continue
		}
		// Each root package is matched only against its own files'
		// diagnostics, so a finding in one root does not read as
		// "unexpected" while checking another.
		own := map[string]bool{}
		for _, f := range pkg.Files {
			own[testFset.Position(f.Pos()).Filename] = true
		}
		var mine []Diagnostic
		for _, d := range got {
			if own[d.Pos.Filename] {
				mine = append(mine, d)
			}
		}
		checkWants(t, pkg, mine)
	}
}

// want comments mark expected diagnostics: `// want "substr"` on the
// finding's line, or `// want(-1) "substr"` with a relative line offset
// when the finding's own line cannot carry a comment (e.g. it IS a
// directive comment under test).
var wantRe = regexp.MustCompile(`// want(?:\(([+-]\d+)\))?((?: "[^"]*")+)`)
var quotedRe = regexp.MustCompile(`"([^"]*)"`)

// checkWants matches diagnostics against // want comments by line and
// substring (matched against the "analyzer: message" rendering).
func checkWants(t *testing.T, pkg *Package, got []Diagnostic) {
	t.Helper()
	type want struct {
		line int
		sub  string
		hit  bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := testFset.Position(c.Pos()).Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("bad want offset in %q: %v", c.Text, err)
					}
					line += off
				}
				for _, q := range quotedRe.FindAllStringSubmatch(m[2], -1) {
					wants = append(wants, &want{line: line, sub: q[1]})
				}
			}
		}
	}
	for _, d := range got {
		rendered := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if !w.hit && w.line == d.Pos.Line && strings.Contains(rendered, w.sub) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, rendered)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic: line %d want %q", w.line, w.sub)
		}
	}
}

// analyzerByName pulls one analyzer out of the suite.
func analyzerByName(t *testing.T, name string) []*Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return []*Analyzer{a}
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}
