package lint

import "testing"

func TestHotalloc(t *testing.T) {
	pkg := Module + "/internal/fixture"

	t.Run("unmarked_functions_are_ignored", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "hotalloc"), fixturePkg{pkg, `package fixture
func Cold() []int {
	out := make([]int, 0, 8)
	return append(out, 1)
}
`})
	})

	t.Run("allocation_constructs_in_marked_function", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "hotalloc"), fixturePkg{pkg, `package fixture
import "fmt"

type state struct {
	scratch []int
	name    string
}

//lint:hotpath
func (s *state) Step(in []int) {
	buf := make([]int, 4)                  // want "make allocates in //lint:hotpath Step"
	lit := []int{1, 2}                     // want "slice literal allocates"
	m := map[int]int{}                     // want "map literal allocates"
	p := &state{}                          // want "&composite literal escapes to the heap"
	var fresh []int
	fresh = append(fresh, 1)               // want "append into a fresh slice grows per call"
	s.scratch = append(s.scratch, 2)       // field-backed scratch: fine
	in = append(in, 3)                     // parameter-backed: caller owns the storage
	fmt.Sprintf("%d", len(buf))            // want "fmt.Sprintf formats through interfaces"
	bs := []byte(s.name)                   // want "conversion copies and allocates"
	_ = string(bs)                         // want "conversion copies and allocates"
	_, _, _, _ = lit, m, p, fresh
}
`})
	})

	t.Run("append_into_rehomed_scratch_is_fine", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "hotalloc"), fixturePkg{pkg, `package fixture

type state struct{ scratch []int }

//lint:hotpath
func (s *state) Step() {
	buf := s.scratch[:0]
	buf = append(buf, 1)
	buf = append(buf, 2)
	s.scratch = buf
}
`})
	})

	t.Run("closures_and_maps_and_boxing", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "hotalloc"), fixturePkg{pkg, `package fixture

func sink(v any) {}

type state struct{ m map[int]int }

//lint:hotpath
func (s *state) Step(k int) {
	total := 0
	f := func() { total++ }        // want "closure captures total and allocates"
	g := func(x int) int { return x + 1 } // non-capturing: compiles to a plain function
	s.m[k] = g(k)                  // want "map write"
	s.m[k]++                       // want "map write"
	sink(k)                        // want "boxes and may allocate"
	f()
}
`})
	})

	t.Run("transitive_callees_are_checked", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "hotalloc"), fixturePkg{pkg, `package fixture

//lint:hotpath
func Outer() { helper() }

func helper() {
	_ = make([]int, 1) // want "make allocates in helper, statically reachable from //lint:hotpath Outer"
}

func unreached() []int {
	return make([]int, 1) // not in the hot set: fine
}
`})
	})

	t.Run("cross_package_callees_are_checked", func(t *testing.T) {
		dep := fixturePkg{Module + "/internal/dep", `package dep

// Grow is reached from a //lint:hotpath caller in another package.
func Grow() []int {
	return make([]int, 1) // want "make allocates in Grow, statically reachable from //lint:hotpath Loop"
}
`}
		root := fixturePkg{pkg, `package fixture
import "` + Module + `/internal/dep"

//lint:hotpath
func Loop() { dep.Grow() }
`}
		runFixtureRoots(t, analyzerByName(t, "hotalloc"), 2, dep, root)
	})

	t.Run("allow_suppresses_amortized_allocation", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "hotalloc"), fixturePkg{pkg, `package fixture

type q struct{ buckets [][]int }

//lint:hotpath
func (x *q) resize(nb int) {
	//lint:allow hotalloc doubling resize amortizes to O(1) per push
	x.buckets = make([][]int, nb)
}
`})
	})
}
