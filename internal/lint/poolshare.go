package lint

import (
	"go/ast"
	"go/types"
)

// poolshareAnalyzer enforces the sharing contract on closures handed to
// the internal/exec pool-submit APIs (exec.Map, exec.ForEach): tasks run
// concurrently, so a task closure may read its captures but may write
// captured state only when the writes are provably per-task-disjoint —
// indexed by the task index, as in out[i] = v. Everything else is
// reported: plain writes to captured variables, writes through captured
// pointers, map writes (never index-disjoint — concurrent map access
// races on the map header regardless of key), appends to captured slices
// (they mutate shared backing storage and the shared length), and any use
// of a captured *rand.Rand (every draw mutates the generator, so "reads"
// are writes; derive a per-task stream with exec.RNG(seed, i) instead).
//
// This is the static complement to the CI race job: the race detector
// only sees the interleavings that executed, while poolshare rejects the
// shape of the bug before any schedule runs it. Task functions that are
// not closure literals cannot be checked and are reported as such —
// //lint:allow poolshare with a reason is the escape hatch for a task
// function proven disjoint by other means. Writes reached through method
// calls on captured receivers are out of scope (the race job's half of
// the contract).
func poolshareAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "poolshare",
		Doc:  "require closures passed to exec pool-submit APIs to write only per-task-disjoint captured state",
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calledFunc(p, call)
					if !isPoolSubmit(fn) {
						return true
					}
					checkPoolTask(p, fn.Name(), call)
					return true
				})
			}
		},
	}
}

// isPoolSubmit reports whether fn is one of internal/exec's pool-submit
// entry points: the functions whose task argument runs on pool workers.
func isPoolSubmit(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != execPkg {
		return false
	}
	switch fn.Name() {
	case "Map", "MapAll", "ForEach":
		return true
	}
	return false
}

// checkPoolTask locates the task function among the call's arguments and
// checks its body when it is a literal.
func checkPoolTask(p *Pass, api string, call *ast.CallExpr) {
	for _, arg := range call.Args {
		t := p.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, ok := t.Underlying().(*types.Signature); !ok {
			continue
		}
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			p.Report(arg, "task function passed to exec.%s is not a closure literal; poolshare cannot prove its captures are task-disjoint — inline the closure at the submit site", api)
			continue
		}
		(&poolCheck{p: p, api: api, lit: lit, reportedRNG: map[types.Object]bool{}, covered: map[ast.Node]bool{}}).check()
	}
}

// poolCheck is one task closure's walk.
type poolCheck struct {
	p       *Pass
	api     string
	lit     *ast.FuncLit
	taskIdx types.Object
	// reportedRNG dedups the captured-generator finding to one per
	// generator per closure.
	reportedRNG map[types.Object]bool
	// covered marks append calls already reported through their enclosing
	// assignment, so s = append(s, v) yields one finding, not two.
	covered map[ast.Node]bool
}

func (c *poolCheck) check() {
	if params := c.lit.Type.Params; params != nil && len(params.List) > 0 && len(params.List[0].Names) > 0 {
		c.taskIdx = c.p.Pkg.Info.Defs[params.List[0].Names[0]]
	}
	ast.Inspect(c.lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				}
				c.checkWrite(lhs, rhs)
			}
		case *ast.IncDecStmt:
			c.checkWrite(n.X, nil)
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.Ident:
			c.checkRandUse(n)
		}
		return true
	})
}

// captured reports whether the object is a variable declared outside the
// task closure — enclosing-function locals, parameters, named results,
// and package-level state all count; every task shares them.
func (c *poolCheck) captured(o types.Object) bool {
	v, ok := o.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pos() < c.lit.Pos() || v.Pos() > c.lit.End()
}

// writeClass classifies a write target inside a task closure.
type writeClass int

const (
	writeLocal     writeClass = iota // rooted at closure-local state: fine
	writeDisjoint                    // rooted at captured[taskIndex]: fine
	writeShared                      // anything else captured: a race
	writeSharedMap                   // captured map: never disjoint
)

// classify resolves a write target to its sharing class and the captured
// root's name. Disjointness is established exactly once, at an index
// expression whose base is a directly captured slice/array and whose
// index is the task-index parameter itself; selectors and further indexes
// below that stay disjoint (out[i].field, out[i][j]).
func (c *poolCheck) classify(e ast.Expr) (writeClass, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		o := c.p.Pkg.Info.Uses[e]
		if o == nil {
			o = c.p.Pkg.Info.Defs[e]
		}
		if o != nil && c.captured(o) {
			return writeShared, e.Name
		}
		return writeLocal, e.Name
	case *ast.IndexExpr:
		if t := c.p.TypeOf(e.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				cls, name := c.classify(e.X)
				if cls == writeLocal {
					return writeLocal, name
				}
				return writeSharedMap, name
			}
		}
		cls, name := c.classify(e.X)
		if cls == writeShared && c.isTaskIndex(e.Index) {
			if _, direct := ast.Unparen(e.X).(*ast.Ident); direct {
				return writeDisjoint, name
			}
		}
		return cls, name
	case *ast.SelectorExpr:
		return c.classify(e.X)
	case *ast.StarExpr:
		cls, name := c.classify(e.X)
		if cls == writeDisjoint {
			return writeDisjoint, name
		}
		return cls, name
	case *ast.SliceExpr:
		return c.classify(e.X)
	}
	return writeLocal, ""
}

// isTaskIndex reports whether the expression is exactly the closure's
// task-index parameter. Derived indices (i+1, i%k, base+j) are not
// provably disjoint and deliberately do not qualify.
func (c *poolCheck) isTaskIndex(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || c.taskIdx == nil {
		return false
	}
	return c.p.Pkg.Info.Uses[id] == c.taskIdx
}

// checkWrite reports a non-disjoint write target. rhs, when present, lets
// s = append(s, v) surface as one append finding instead of two.
func (c *poolCheck) checkWrite(lhs, rhs ast.Expr) {
	cls, name := c.classify(lhs)
	switch cls {
	case writeLocal, writeDisjoint:
		return
	case writeSharedMap:
		c.p.Report(lhs, "map write to captured %s inside an exec.%s task races across workers; maps are never index-disjoint — give each task its own map or intern into a slice indexed by task", name, c.api)
		return
	}
	// Shared. An append assigned back to the same captured slice is the
	// append bug; report it as such, once.
	if rhs != nil {
		if ap, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && c.isAppend(ap) && len(ap.Args) > 0 {
			if apCls, apName := c.classify(ap.Args[0]); apCls == writeShared && apName == name {
				c.covered[ap] = true
				c.p.Report(lhs, "append to captured slice %s inside an exec.%s task mutates shared backing storage and length; preallocate and write out[i], or return a value per task", name, c.api)
				return
			}
		}
	}
	if _, isStar := ast.Unparen(lhs).(*ast.StarExpr); isStar {
		c.p.Report(lhs, "write through captured pointer %s inside an exec.%s task is not task-disjoint; tasks run concurrently — write out[i] with i the task index, or return a value", name, c.api)
		return
	}
	c.p.Report(lhs, "write to captured %s inside an exec.%s task is not task-disjoint; tasks run concurrently — write out[i] with i the task index, or return a value", name, c.api)
}

// checkCall reports appends into captured backing storage that are not
// assigned back (covered above) and is the hook for the rand check on
// call receivers.
func (c *poolCheck) checkCall(call *ast.CallExpr) {
	if c.isAppend(call) && !c.covered[call] && len(call.Args) > 0 {
		if cls, name := c.classify(call.Args[0]); cls == writeShared {
			c.p.Report(call, "append to captured slice %s inside an exec.%s task mutates shared backing storage; preallocate and write out[i], or return a value per task", name, c.api)
		}
	}
}

func (c *poolCheck) isAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// checkRandUse reports any use of a captured math/rand generator: every
// draw advances the shared stream, so even read-shaped uses are writes,
// and worker interleaving makes the draw sequence nondeterministic on top
// of the race.
func (c *poolCheck) checkRandUse(id *ast.Ident) {
	o := c.p.Pkg.Info.Uses[id]
	if o == nil || !c.captured(o) || c.reportedRNG[o] || !isRandGenType(o.Type()) {
		return
	}
	c.reportedRNG[o] = true
	c.p.Report(id, "captured %s %s shares one RNG stream across concurrent exec.%s tasks; derive a per-task stream with exec.RNG(base, i) or exec.DomainRNG", o.Type(), id.Name, c.api)
}

// isRandGenType reports whether t is a math/rand or math/rand/v2
// generator or source (possibly behind a pointer).
func isRandGenType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if path := obj.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	switch obj.Name() {
	case "Rand", "Source", "Source64", "PCG", "ChaCha8", "Zipf", "ExpFloat64":
		return true
	}
	return false
}
