package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// execPkg is the one package allowed to touch math/rand constructors: it
// owns the SplitMix64 derivation chain and the Domain registry contract.
const execPkg = Module + "/internal/exec"

// seeddomainAnalyzer enforces RNG domain discipline in internal packages:
// every generator family must be constructed through
// exec.DomainRNG/exec.DomainSeed with an exec.Domain whose Tag and ID are
// constants, the Tag must read "<package>/<stream>" for the declaring
// package, and both Tag and ID must be unique across the repository. Raw
// rand.New/rand.NewSource constructions outside internal/exec are
// reported, as is any local reimplementation of the SplitMix64 mix (its
// golden-ratio constant is the tell) — a copy-pasted domain or a private
// hash chain silently correlates two supposedly independent streams, and
// nothing before this analyzer checked for it.
func seeddomainAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "seeddomain",
		Doc:  "require exec.Domain-tagged RNG construction with repo-unique tags and IDs in internal packages",
	}
	// Domain uniqueness spans packages: the registries accumulate across
	// the per-package passes of one run (packages are visited in
	// deterministic topological order, so the "first" declaration is
	// stable).
	tagSeen := map[string]token.Position{}
	idSeen := map[int64]token.Position{}
	a.Run = func(p *Pass) {
		if !strings.HasPrefix(p.Pkg.PkgPath, Module+"/internal/") || p.Pkg.PkgPath == execPkg {
			return
		}
		nestedSource := map[ast.Expr]bool{}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkRawRandCall(p, n, nestedSource)
				case *ast.CompositeLit:
					checkDomainLit(p, n, tagSeen, idSeen)
				case *ast.BasicLit:
					checkSplitMixConstant(p, n)
				}
				return true
			})
		}
	}
	return a
}

// checkRawRandCall reports math/rand generator construction outside the
// blessed exec wrappers. The idiomatic rand.New(rand.NewSource(seed))
// nesting is reported once, at the outer call.
func checkRawRandCall(p *Pass, call *ast.CallExpr, nestedSource map[ast.Expr]bool) {
	fn := calledFunc(p, call)
	if fn == nil || !isRandConstructor(fn) {
		return
	}
	if fn.Name() == "New" && len(call.Args) == 1 {
		nestedSource[ast.Unparen(call.Args[0])] = true
	} else if nestedSource[call] {
		return
	}
	p.Report(call, "raw rand.%s constructs an untagged stream; declare a package-level exec.Domain and use exec.DomainRNG(base, domain, coords...) (or exec.ScratchRNG + exec.Reseed in hot loops)", fn.Name())
}

// isRandConstructor reports whether fn creates a math/rand (or v2)
// generator or source.
func isRandConstructor(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

// checkDomainLit validates an exec.Domain composite literal: constant
// fields, "<package>/<stream>" tag naming, and repo-wide uniqueness of
// both tag and ID.
func checkDomainLit(p *Pass, lit *ast.CompositeLit, tagSeen map[string]token.Position, idSeen map[int64]token.Position) {
	if !isExecDomainType(p.TypeOf(lit)) {
		return
	}
	var tagExpr, idExpr ast.Expr
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				switch key.Name {
				case "Tag":
					tagExpr = kv.Value
				case "ID":
					idExpr = kv.Value
				}
			}
			continue
		}
		switch i { // positional: struct field order is Tag, ID
		case 0:
			tagExpr = elt
		case 1:
			idExpr = elt
		}
	}
	if tagExpr == nil || idExpr == nil {
		p.Report(lit, "exec.Domain literal must set both Tag and ID so the stream family is identifiable")
		return
	}
	tagVal := constValue(p, tagExpr)
	idVal := constValue(p, idExpr)
	if tagVal == nil || tagVal.Kind() != constant.String || idVal == nil || idVal.Kind() != constant.Int {
		p.Report(lit, "exec.Domain Tag and ID must be constants the analyzer can read and de-duplicate")
		return
	}
	tag := constant.StringVal(tagVal)
	id, _ := constant.Int64Val(idVal)
	if want := path.Base(p.Pkg.PkgPath) + "/"; !strings.HasPrefix(tag, want) || len(tag) == len(want) {
		p.Report(tagExpr, "domain tag %q must read %q for a stream declared in this package", tag, want+"<stream>")
	}
	pos := p.Fset.Position(lit.Pos())
	if prev, dup := tagSeen[tag]; dup {
		p.Report(lit, "domain tag %q already declared at %s:%d; independent streams must not share a tag", tag, prev.Filename, prev.Line)
	} else {
		tagSeen[tag] = pos
	}
	if prev, dup := idSeen[id]; dup {
		p.Report(lit, "domain ID %d already declared at %s:%d; reusing an ID correlates two streams draw-for-draw", id, prev.Filename, prev.Line)
	} else {
		idSeen[id] = pos
	}
}

// constValue resolves an expression to its constant value, or nil.
func constValue(p *Pass, e ast.Expr) constant.Value {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// isExecDomainType reports whether t is exec.Domain.
func isExecDomainType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == execPkg && obj.Name() == "Domain"
}

// splitMixGamma is SplitMix64's golden-ratio increment — the constant a
// private reimplementation of the mix cannot avoid writing down.
//
//lint:allow seeddomain the detector must name the constant it detects
const splitMixGamma = 0x9e3779b97f4a7c15

// checkSplitMixConstant reports integer literals equal to the SplitMix64
// gamma: a hand-rolled hash chain bypasses the collision-resistance
// argument exec.Seed rests on.
func checkSplitMixConstant(p *Pass, lit *ast.BasicLit) {
	if lit.Kind != token.INT {
		return
	}
	tv, ok := p.Pkg.Info.Types[lit]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	if v, exact := constant.Uint64Val(tv.Value); exact && v == splitMixGamma {
		p.Report(lit, "SplitMix64 constant %#x: derive seeds through exec.Seed/exec.DomainSeed instead of reimplementing the mix", uint64(splitMixGamma))
	}
}
