package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, comment-preserving package the analyzers
// run over.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Root marks packages named by the caller's patterns (analyzed), as
	// opposed to module-internal dependencies loaded only for type info.
	Root bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// goList shells out to the go command — the one tool the stdlib-only rule
// assumes, since it is the toolchain itself — and decodes the JSON stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// modulePath reports the main module's path, so the loader can tell
// module-internal imports (type-checked from source here) from standard
// library ones (delegated to the source importer).
func modulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// loaderImporter resolves module-internal imports from the loader's own
// cache of already-checked packages and everything else (the standard
// library) through the compiler-from-source importer.
type loaderImporter struct {
	module string
	cache  map[string]*types.Package
	std    types.Importer
}

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := li.cache[path]; ok {
		return pkg, nil
	}
	if li.module != "" && (path == li.module || strings.HasPrefix(path, li.module+"/")) {
		return nil, fmt.Errorf("lint: module package %q not loaded before its importer", path)
	}
	return li.std.Import(path)
}

// LoadInto resolves the patterns with `go list`, pulls in module-internal
// dependencies, and type-checks everything in dependency order into the
// caller's FileSet. Test files are not loaded: the determinism contract is
// about production code, and every analyzer exempts tests.
func LoadInto(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	mod, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	roots, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	// Transitively list module-internal dependencies of the roots.
	metas := map[string]*listedPackage{}
	isRoot := map[string]bool{}
	var queue []string
	for _, p := range roots {
		metas[p.ImportPath] = p
		isRoot[p.ImportPath] = true
		queue = append(queue, p.Imports...)
	}
	for len(queue) > 0 {
		imp := queue[0]
		queue = queue[1:]
		if _, ok := metas[imp]; ok || !(imp == mod || strings.HasPrefix(imp, mod+"/")) {
			continue
		}
		deps, err := goList(dir, imp)
		if err != nil {
			return nil, err
		}
		for _, d := range deps {
			metas[d.ImportPath] = d
			queue = append(queue, d.Imports...)
		}
	}

	order, err := topoSort(mod, metas)
	if err != nil {
		return nil, err
	}

	li := &loaderImporter{
		module: mod,
		cache:  map[string]*types.Package{},
		std:    importer.ForCompiler(fset, "source", nil),
	}
	var out []*Package
	for _, path := range order {
		meta := metas[path]
		pkg, err := checkPackage(fset, li, meta)
		if err != nil {
			return nil, err
		}
		li.cache[path] = pkg.Types
		pkg.Root = isRoot[path]
		out = append(out, pkg)
	}
	return out, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer, ties broken by import path for deterministic runs.
func topoSort(mod string, metas map[string]*listedPackage) ([]string, error) {
	paths := make([]string, 0, len(metas))
	for p := range metas {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %q", p)
		}
		state[p] = visiting
		meta := metas[p]
		deps := append([]string(nil), meta.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := metas[d]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// declSite is one function declaration with a body somewhere in the
// loaded module: the call graph's node payload.
type declSite struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// funcDecls indexes every function and method declared with a body across
// the loaded packages by its types.Func object. This is the intra-module
// half of a call graph: stdlib callees have no entry and a walk simply
// stops at them.
func funcDecls(pkgs []*Package) map[*types.Func]declSite {
	decls := map[*types.Func]declSite{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = declSite{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
	return decls
}

// staticCallees appends the statically-resolvable callees of the
// declaration's body: direct calls to named functions and methods whose
// identity the type checker pins down. Calls through function values,
// interface methods without a concrete receiver, and builtins resolve to
// nothing and the walk stops there — the hot-path contract is about code
// the compiler provably reaches, not about dynamic dispatch.
func staticCallees(site declSite, dst []*types.Func) []*types.Func {
	info := site.Pkg.Info
	ast.Inspect(site.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			obj = info.ObjectOf(fun)
		case *ast.SelectorExpr:
			obj = info.ObjectOf(fun.Sel)
		}
		if fn, ok := obj.(*types.Func); ok {
			dst = append(dst, fn)
		}
		return true
	})
	return dst
}

// scratchMarker is the annotation that declares a struct field to be
// owner-scoped scratch memory:
//
//	type evolver struct {
//		entries []entry //lint:scratch
//	}
//
// Scratch is storage the owner overwrites wholesale on its next kernel
// invocation, so nothing aliasing it may outlive the call that filled it.
// The scratchsafe analyzer enforces that contract on every method of the
// declaring type and on every //lint:hotpath function.
const scratchMarker = "//lint:scratch"

// scratchIndex is the repo-wide view of the //lint:scratch annotations:
// the tagged field objects, and the named types that carry at least one
// of them (whose methods all inherit the scratchsafe check).
type scratchIndex struct {
	fields map[*types.Var]bool
	owners map[*types.TypeName]bool
}

// scratchFields indexes every //lint:scratch-tagged struct field across
// the loaded packages. The marker is read from the field's doc comment or
// trailing line comment, so it works both above and beside the field.
func scratchFields(pkgs []*Package) *scratchIndex {
	idx := &scratchIndex{fields: map[*types.Var]bool{}, owners: map[*types.TypeName]bool{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				owner, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
				for _, field := range st.Fields.List {
					if !hasScratchMarker(field) {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							idx.fields[v] = true
							if owner != nil {
								idx.owners[owner] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return idx
}

// hasScratchMarker reports whether the field's doc or trailing comment
// carries //lint:scratch.
func hasScratchMarker(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), scratchMarker) {
				return true
			}
		}
	}
	return false
}

// receiverVar returns the declaration's receiver variable object, or nil
// for plain functions and anonymous receivers.
func receiverVar(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// receiverTypeName resolves the named type a method declaration hangs off,
// unwrapping one level of pointer, or nil for plain functions.
func receiverTypeName(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// checkPackage parses and type-checks one package's non-test files.
func checkPackage(fset *token.FileSet, imp types.Importer, meta *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(meta.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", meta.ImportPath, err)
	}
	return &Package{
		PkgPath: meta.ImportPath,
		Dir:     meta.Dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
