// Package floateq_bad is a negative fixture: exact equality between
// computed floating-point values.
package floateq_bad

// Converged compares two computed floats exactly.
func Converged(prev, next float64) bool {
	return prev == next
}

// Distinct uses != between computed floats.
func Distinct(a, b float64) bool {
	return a*2 != b/3
}
