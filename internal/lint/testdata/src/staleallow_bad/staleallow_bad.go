// Package staleallow_bad is the negative fixture for stale-directive
// detection: a //lint:allow that no longer suppresses anything must
// itself be a finding, or silenced exceptions would outlive the code
// that excused them. CI asserts the suite fails on this package.
package staleallow_bad

// Total sums its inputs; there has been no nondeterm finding here since
// the wall-clock read it once excused was deleted.
func Total(vs []int) int {
	//lint:allow nondeterm wall time was read here once, long ago
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}
