// Package hotalloc_bad is the negative fixture for the hotalloc
// analyzer: a //lint:hotpath function that allocates directly and through
// a static callee. CI asserts the suite fails on this package.
package hotalloc_bad

import "fmt"

// Stepper carries no scratch buffers, which is exactly the bug.
type Stepper struct {
	out []int
}

//lint:hotpath
func (s *Stepper) Step(n int) {
	buf := make([]int, n)
	var fresh []int
	for i := range buf {
		fresh = append(fresh, i)
	}
	s.out = fresh
	s.format(n)
}

// format is not marked, but Step statically calls it, so it inherits the
// contract.
func (s *Stepper) format(n int) {
	fmt.Sprintf("%d", n)
}
