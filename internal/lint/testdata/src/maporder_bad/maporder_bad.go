// Package maporder_bad is a negative fixture: rows emitted in map
// iteration order, and map keys collected but never sorted — the exact
// bug class the serial-vs-parallel CSV diff job exists to catch.
package maporder_bad

import (
	"fmt"
	"io"
)

// DumpRows writes one CSV row per map entry, in whatever order the
// runtime hands them out.
func DumpRows(w io.Writer, counts map[string]int) {
	for kind, n := range counts {
		fmt.Fprintf(w, "%s,%d\n", kind, n)
	}
}

// Keys returns map keys without sorting them.
func Keys(counts map[string]int) []string {
	var ks []string
	for k := range counts {
		ks = append(ks, k)
	}
	return ks
}
