// Package scratchsafe_bad is the negative fixture for the scratchsafe
// analyzer: a scratch-carrying kernel that leaks its buffers through
// every escape channel the analyzer knows. CI asserts the suite fails on
// this package.
package scratchsafe_bad

// retained is the global a buggy kernel parks its scratch in.
var retained []int

// sink is a non-receiver struct scratch must not land in.
type sink struct {
	kept []int
}

// kernel reuses buf across Step calls; nothing aliasing it may survive a
// call.
type kernel struct {
	buf []int //lint:scratch
}

// Step fills the scratch and then leaks it four different ways.
func (k *kernel) Step(n int, s *sink) []int {
	k.buf = k.buf[:0]
	for i := 0; i < n; i++ {
		k.buf = append(k.buf, i)
	}
	retained = k.buf // stores scratch into a global
	s.kept = k.buf   // stores scratch into a non-receiver struct
	return k.buf     // returns scratch
}

// Window re-slices scratch into a named result.
func (k *kernel) Window(lo, hi int) (out []int) {
	out = k.buf[lo:hi]
	return out
}

// Deferred returns a closure that reads scratch after the call ends.
func (k *kernel) Deferred() func() int {
	return func() int { return len(k.buf) }
}
