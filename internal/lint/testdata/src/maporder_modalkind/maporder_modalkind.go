// Package maporder_modalkind is the regression fixture for the audited
// map range in internal/experiments/capacity_exp.go (modalKind): keys are
// collected under `range` and sorted before any ordered use, which is the
// blessed idiom. The maporder analyzer must keep passing this shape — a
// false positive here would force an allow directive onto correct code.
package maporder_modalkind

import "sort"

// ModalKind mirrors capacity_exp.go's modal bottleneck-kind reduction:
// most common key wins, ties broken lexicographically.
func ModalKind(kinds map[string]int) string {
	best, bestN := "", 0
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if kinds[k] > bestN {
			best, bestN = k, kinds[k]
		}
	}
	return best
}
