// Package seeddomain_bad is the negative fixture for the seeddomain
// analyzer: raw generator construction, a mis-named domain tag, and a
// duplicated domain. CI asserts the suite fails on this package.
package seeddomain_bad

import (
	"math/rand"

	"github.com/openspace-project/openspace/internal/exec"
)

// Wrong package prefix: this package's streams must be tagged
// "seeddomain_bad/<stream>".
var domainWrong = exec.Domain{Tag: "fluid/arrivals", ID: 900}

// Copy-pasted tag: correlates two supposedly independent streams.
var domainA = exec.Domain{Tag: "seeddomain_bad/stream", ID: 901}
var domainB = exec.Domain{Tag: "seeddomain_bad/stream", ID: 902}

// NewRaw bypasses the domain discipline entirely.
func NewRaw(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(exec.Seed(seed)))
}

// Use keeps the domains referenced.
func Use(seed int64) int64 {
	return exec.DomainSeed(seed, domainWrong) ^ exec.DomainSeed(seed, domainA) ^ exec.DomainSeed(seed, domainB)
}
