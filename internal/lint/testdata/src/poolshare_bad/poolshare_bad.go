// Package poolshare_bad is the negative fixture for the poolshare
// analyzer: an exec.Map sweep whose task closure writes captured state
// every way the analyzer forbids. CI asserts the suite fails on this
// package. The code compiles and would even pass a lucky race-detector
// run — which is exactly why the static check exists.
package poolshare_bad

import (
	"math/rand"

	"github.com/openspace-project/openspace/internal/exec"
)

// Sweep fans n trials over the pool and shares everything it shouldn't.
func Sweep(workers, n int, rng *rand.Rand) ([]float64, error) {
	sum := 0.0
	hits := map[int]int{}
	var samples []float64
	out := make([]float64, n+1)
	return exec.Map(workers, n, func(i int) (float64, error) {
		v := rng.Float64()           // captured generator: one stream, many workers
		sum += v                     // plain captured write
		hits[i] = 1                  // map write: never index-disjoint
		samples = append(samples, v) // append into shared backing storage
		out[i+1] = v                 // derived index: not provably disjoint
		out[i] = v                   // the one legal shape, for contrast
		return v, nil
	})
}

// SweepAll repeats the shape over exec.MapAll: collecting per-task
// errors does not loosen the sharing contract on the task closure.
func SweepAll(workers, n int) ([]float64, []error, error) {
	worst := 0.0
	return exec.MapAll(workers, n, func(i int) (float64, error) {
		v := float64(i)
		if v > worst { // plain captured write under MapAll
			worst = v
		}
		return v, nil
	})
}
