// Package errdrop_bad is a negative fixture: writer errors silently
// dropped, so a failed emission exits 0 and the experiment looks clean.
package errdrop_bad

import "io"

// Emit drops the Write error.
func Emit(w io.Writer, row []byte) {
	w.Write(row)
}

// EmitAll defers Close on a writable handle, losing its error.
func EmitAll(wc io.WriteCloser, rows [][]byte) {
	defer wc.Close()
	for _, r := range rows {
		w := io.Writer(wc)
		if _, err := w.Write(r); err != nil {
			return
		}
	}
}

// Engine mimics the discrete-event scheduler shape.
type Engine struct{}

// Schedule enqueues an event.
func (*Engine) Schedule(atS float64, fn func()) error { return nil }

// Tick replicates the dropped-error self-rescheduling pattern: the tick
// chain silently ends if Schedule refuses, and the rest of the run has no
// handover maintenance.
func Tick(e *Engine, next float64) {
	e.Schedule(next, func() {})
}
