// Package nondeterm_bad is a negative fixture: every forbidden shape the
// nondeterm analyzer exists to catch, in compiling code. It lives under
// testdata so `./...` never builds or lints it; the linter's own tests
// point the driver here and expect exit 1.
package nondeterm_bad

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Draw uses the process-global generator.
func Draw() int { return rand.Intn(6) }

// NewRNG seeds from the wall clock.
func NewRNG() *rand.Rand { return rand.New(rand.NewSource(time.Now().UnixNano())) }

// NewFromCall seeds from an arbitrary function call.
func NewFromCall() *rand.Rand { return rand.New(rand.NewSource(pick())) }

func pick() int64 { return 3 }
