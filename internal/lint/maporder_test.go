package lint

import "testing"

func TestMaporder(t *testing.T) {
	mo := analyzerByName(t, "maporder")
	pkg := Module + "/internal/fixture"

	cases := []struct {
		name string
		pkgs []fixturePkg
	}{
		{"print_in_map_range_flagged", []fixturePkg{{pkg, `package fixture
import "fmt"
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "maporder: output emitted inside"
	}
}
`}}},
		{"fprint_in_map_range_flagged", []fixturePkg{{pkg, `package fixture
import (
	"fmt"
	"io"
)
func Dump(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) // want "maporder: output emitted inside"
	}
}
`}}},
		{"writer_method_in_map_range_flagged", []fixturePkg{{pkg, `package fixture
import "strings"
func Dump(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "maporder: output emitted inside"
	}
	return b.String()
}
`}}},
		{"csv_write_in_map_range_flagged", []fixturePkg{{pkg, `package fixture
import (
	"encoding/csv"
	"strconv"
)
func Dump(w *csv.Writer, m map[string]int) {
	for k, v := range m {
		w.Write([]string{k, strconv.Itoa(v)}) // want "maporder: output emitted inside"
	}
}
`}}},
		{"unsorted_keys_returned_flagged", []fixturePkg{{pkg, `package fixture
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want "maporder: map keys collected into"
	}
	return ks
}
`}}},
		// The exact shape of modalKind in internal/experiments/capacity_exp.go:
		// keys collected under range, sorted before any ordered use. Must stay
		// clean — this is the audited site's regression fixture.
		{"modalkind_sorted_after_clean", []fixturePkg{{pkg, `package fixture
import "sort"
func ModalKind(kinds map[string]int) string {
	best, bestN := "", 0
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if kinds[k] > bestN {
			best, bestN = k, kinds[k]
		}
	}
	return best
}
`}}},
		{"slices_sort_after_clean", []fixturePkg{{pkg, `package fixture
import "slices"
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}
`}}},
		{"sort_slice_after_clean", []fixturePkg{{pkg, `package fixture
import "sort"
func Keys(m map[int]string) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
`}}},
		{"aggregation_clean", []fixturePkg{{pkg, `package fixture
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
`}}},
		{"slice_range_clean", []fixturePkg{{pkg, `package fixture
import "fmt"
func Dump(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
`}}},
		{"allow_directive", []fixturePkg{{pkg, `package fixture
import "fmt"
func Dump(m map[string]int) {
	for k := range m {
		fmt.Println(k) //lint:allow maporder debug dump, order is irrelevant here
	}
}
`}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runFixture(t, mo, tc.pkgs...) })
	}
}
