package lint

import "testing"

func TestSeeddomain(t *testing.T) {
	pkg := Module + "/internal/fixture"

	t.Run("raw_construction_reported_once", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "seeddomain"), execStub, fixturePkg{pkg, `package fixture
import "math/rand"
func A() *rand.Rand { return rand.New(rand.NewSource(42)) } // want "raw rand.New constructs an untagged stream"
func B() rand.Source { return rand.NewSource(7) } // want "raw rand.NewSource constructs an untagged stream"
`})
	})

	t.Run("domain_construction_is_blessed", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "seeddomain"), execStub, fixturePkg{pkg, `package fixture
import (
	"math/rand"
	exec "` + Module + `/internal/exec"
)
var domainArrivals = exec.Domain{Tag: "fixture/arrivals", ID: 3}
func A(seed int64) *rand.Rand { return exec.DomainRNG(seed, domainArrivals, 0) }
`})
	})

	t.Run("tag_must_name_the_declaring_package", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "seeddomain"), execStub, fixturePkg{pkg, `package fixture
import exec "` + Module + `/internal/exec"
var d1 = exec.Domain{Tag: "otherpkg/arrivals", ID: 3} // want "for a stream declared in this package"
var d2 = exec.Domain{Tag: "fixture/", ID: 4}          // want "for a stream declared in this package"
var d3 = exec.Domain{Tag: "fixture/ok", ID: 5}
`})
	})

	t.Run("fields_must_be_constant", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "seeddomain"), execStub, fixturePkg{pkg, `package fixture
import exec "` + Module + `/internal/exec"
func mk(tag string) exec.Domain {
	return exec.Domain{Tag: tag, ID: 9} // want "must be constants"
}
var partial = exec.Domain{Tag: "fixture/partial"} // want "must set both Tag and ID"
`})
	})

	t.Run("duplicate_tag_and_id_within_package", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "seeddomain"), execStub, fixturePkg{pkg, `package fixture
import exec "` + Module + `/internal/exec"
var a = exec.Domain{Tag: "fixture/stream", ID: 1}
var b = exec.Domain{Tag: "fixture/stream", ID: 2} // want "already declared"
var c = exec.Domain{Tag: "fixture/other", ID: 1}  // want "ID 1 already declared"
`})
	})

	t.Run("duplicate_id_across_packages", func(t *testing.T) {
		other := fixturePkg{Module + "/internal/otherfix", `package otherfix
import exec "` + Module + `/internal/exec"
var D = exec.Domain{Tag: "otherfix/stream", ID: 11}
`}
		target := fixturePkg{pkg, `package fixture
import exec "` + Module + `/internal/exec"
var D = exec.Domain{Tag: "fixture/stream", ID: 11} // want "ID 11 already declared"
`}
		runFixtureRoots(t, analyzerByName(t, "seeddomain"), 2, execStub, other, target)
	})

	t.Run("splitmix_reimplementation_reported", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "seeddomain"), execStub, fixturePkg{pkg, `package fixture
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15 // want "SplitMix64 constant"
	return x
}
`})
	})

	t.Run("exec_itself_is_exempt", func(t *testing.T) {
		// The stub exec package uses raw rand.New by design; analyzing it
		// as a root must stay clean.
		runFixtureRoots(t, analyzerByName(t, "seeddomain"), 1, execStub)
	})

	t.Run("allow_suppresses", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "seeddomain"), execStub, fixturePkg{pkg, `package fixture
import "math/rand"
func A() *rand.Rand {
	//lint:allow seeddomain stand-alone demo stream, not an experiment
	return rand.New(rand.NewSource(42))
}
`})
	})
}
