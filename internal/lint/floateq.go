package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floateqAnalyzer flags == and != between two computed floating-point
// values: after any arithmetic the comparison is representation-sensitive,
// so "equal" experiment outputs can diverge across architectures or
// optimization levels. Comparisons against a constant (the `x == 0`
// sentinel idiom) are exempt; intentional exact comparisons — e.g.
// deterministic sort tie-breaks — carry a //lint:allow floateq directive.
func floateqAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "floateq",
		Doc:  "flag exact ==/!= between computed floating-point values",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.TypeOf(be.X)) || !isFloat(p.TypeOf(be.Y)) {
					return true
				}
				if isConstExpr(p, be.X) || isConstExpr(p, be.Y) {
					return true
				}
				p.Report(be, "exact floating-point %s comparison is representation-sensitive; compare within a tolerance, or annotate with //lint:allow floateq if exact equality is the point", be.Op)
				return true
			})
		}
	}
	return a
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
