package lint

import (
	"go/ast"
	"go/types"
)

// errdropAnalyzer is an errcheck-lite scoped to the CSV-emission surface:
// a discarded error from an io.Writer-shaped Write, a Flush, or a Close
// means an experiment can silently truncate its output and still exit 0 —
// the diff job then blames determinism for what was a full disk.
// *bytes.Buffer and *strings.Builder are exempt (their writers are
// documented never to fail); anything else needs a check or a justified
// //lint:allow errdrop.
//
// The same treatment covers the discrete-event scheduler surface: a
// discarded error from a Schedule/After-shaped method means an event
// silently never fires — the run still completes and emits a plausible
// CSV, minus a whole tick's worth of work.
func errdropAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "errdrop",
		Doc:  "flag discarded errors from Write/Flush/Close on writers and Schedule/After on schedulers",
	}
	a.Run = func(p *Pass) {
		report := func(call *ast.CallExpr, deferred bool) {
			fn, recvT := calledMethod(p, call)
			if fn == nil {
				return
			}
			if isSchedulerErrMethod(fn) {
				p.Report(call, "error from %s is discarded; a failed schedule means the event silently never fires (check it, or panic on a provably unreachable path)", fn.Name())
				return
			}
			if !isWriterErrMethod(fn, recvT) {
				return
			}
			if deferred {
				p.Report(call, "deferred %s discards its error; close/flush explicitly on the success path so write failures surface", fn.Name())
				return
			}
			p.Report(call, "error from %s is discarded; a failed write must fail the run (assign and check it)", fn.Name())
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						report(call, false)
					}
				case *ast.DeferStmt:
					report(n.Call, true)
				case *ast.GoStmt:
					report(n.Call, false)
				}
				return true
			})
		}
	}
	return a
}

// calledMethod resolves a call to (method, receiver type at the call
// site). The call-site receiver matters: io.WriteCloser's Close is
// declared on the embedded io.Closer, and judging writability from the
// declaration would miss every composed writer interface.
func calledMethod(p *Pass, call *ast.CallExpr) (*types.Func, types.Type) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	selInfo, ok := p.Pkg.Info.Selections[sel]
	if !ok {
		return nil, nil // qualified package function, not a method call
	}
	fn, ok := selInfo.Obj().(*types.Func)
	if !ok {
		return nil, nil
	}
	return fn, selInfo.Recv()
}

// isWriterErrMethod reports whether fn is a method whose dropped error
// loses written data: Write([]byte) (int, error) — the io.Writer shape —
// or Flush/Close returning error, on a receiver that can write.
func isWriterErrMethod(fn *types.Func, recvT types.Type) bool {
	if recvT == nil || isInfallibleWriter(recvT) {
		return false
	}
	sig := fn.Type().(*types.Signature)
	switch fn.Name() {
	case "Write":
		return isIOWriterShape(sig)
	case "Flush":
		return returnsOnlyError(sig)
	case "Close":
		// Closing a pure reader is allowed to fail silently; only types
		// that can also write hold buffered data a dropped Close can lose.
		return returnsOnlyError(sig) && hasWriteMethod(recvT)
	}
	return false
}

// isInfallibleWriter exempts the stdlib writers documented to never return
// a write error.
func isInfallibleWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// isIOWriterShape matches the exact io.Writer method signature.
func isIOWriterShape(sig *types.Signature) bool {
	if sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	slice, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok || !isBasic(slice.Elem(), types.Byte) {
		return false
	}
	return isBasic(sig.Results().At(0).Type(), types.Int) && isErrorType(sig.Results().At(1).Type())
}

// isSchedulerErrMethod matches methods named Schedule or After taking at
// least one parameter and returning exactly one error — the shape of
// sim.Engine's event scheduling. Unlike the writer rules it keys on the
// signature alone: any scheduler lookalike that can refuse an event must
// not have that refusal ignored.
func isSchedulerErrMethod(fn *types.Func) bool {
	switch fn.Name() {
	case "Schedule", "After":
	default:
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() > 0 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type())
}

func returnsOnlyError(sig *types.Signature) bool {
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type())
}

// hasWriteMethod reports whether t's method set includes an
// io.Writer-shaped Write.
func hasWriteMethod(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "Write" {
			continue
		}
		if isIOWriterShape(fn.Type().(*types.Signature)) {
			return true
		}
	}
	return false
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
