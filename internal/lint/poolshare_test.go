package lint

import "testing"

func TestPoolshare(t *testing.T) {
	pkg := Module + "/internal/fixture"

	t.Run("reads_and_disjoint_writes_are_fine", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "poolshare"), execStub, fixturePkg{pkg, `package fixture
import "` + Module + `/internal/exec"

type row struct{ v, w int }

func Sweep(workers, n int, scale int) ([]int, error) {
	out := make([]int, n)
	grid := make([]row, n)
	err := exec.ForEach(workers, n, func(i int) error {
		local := scale * i // reads of captures are fine
		out[i] = local     // index-disjoint by the task index
		grid[i].v = local  // field of a task-indexed element
		grid[i].w = local + 1
		return nil
	})
	return out, err
}
`})
	})

	t.Run("non_disjoint_writes_are_reported", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "poolshare"), execStub, fixturePkg{pkg, `package fixture
import "` + Module + `/internal/exec"

func Sweep(workers, n int) error {
	sum := 0
	last := 0
	out := make([]int, n+1)
	err := exec.ForEach(workers, n, func(i int) error {
		sum += i        // want "write to captured sum"
		last = i        // want "write to captured last"
		out[i+1] = i    // want "write to captured out"
		out[i] = i      // disjoint: fine
		return nil
	})
	_ = last
	return err
}
`})
	})

	t.Run("maps_appends_pointers_and_rand", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "poolshare"), execStub, fixturePkg{pkg, `package fixture
import (
	"math/rand"

	"` + Module + `/internal/exec"
)

func Sweep(workers, n int, rng *rand.Rand, total *float64) error {
	counts := map[int]int{}
	var rows []int
	return exec.ForEach(workers, n, func(i int) error {
		counts[i] = i            // want "map write to captured counts"
		rows = append(rows, i)   // want "append to captured slice rows"
		*total += rng.Float64()  // want "write through captured pointer total" "captured *math/rand.Rand rng"
		return nil
	})
}
`})
	})

	t.Run("mapall_tasks_carry_the_same_contract", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "poolshare"), execStub, fixturePkg{pkg, `package fixture
import "` + Module + `/internal/exec"

func Sweep(workers, n int) ([]int, []error, error) {
	worst := 0
	out := make([]int, n)
	vals, errs, err := exec.MapAll(workers, n, func(i int) (int, error) {
		if i > worst {
			worst = i // want "write to captured worst"
		}
		out[i] = i // disjoint: fine
		return i, nil
	})
	_ = out
	return vals, errs, err
}
`})
	})

	t.Run("non_literal_task_function_is_reported", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "poolshare"), execStub, fixturePkg{pkg, `package fixture
import "` + Module + `/internal/exec"

func task(i int) error { return nil }

func Sweep(workers, n int) error {
	return exec.ForEach(workers, n, task) // want "task function passed to exec.ForEach is not a closure literal"
}
`})
	})

	t.Run("closure_locals_and_nested_closures_are_fine", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "poolshare"), execStub, fixturePkg{pkg, `package fixture
import "` + Module + `/internal/exec"

func Sweep(workers, n int) ([]int, error) {
	return exec.Map(workers, n, func(i int) (int, error) {
		acc := 0
		add := func(v int) { acc += v } // task-local capture: not shared
		for j := 0; j < i; j++ {
			add(j)
		}
		return acc, nil
	})
}
`})
	})

	t.Run("map_results_written_by_return_are_fine", func(t *testing.T) {
		// The collector owns out[i]; the idiomatic return-a-value shape
		// must stay silent end to end.
		runFixture(t, analyzerByName(t, "poolshare"), execStub, fixturePkg{pkg, `package fixture
import "` + Module + `/internal/exec"

func Sweep(workers, n int, seed int64) ([]float64, error) {
	return exec.Map(workers, n, func(i int) (float64, error) {
		rng := exec.RNG(seed, int64(i)) // per-task stream: the blessed pattern
		return rng.Float64(), nil
	})
}
`})
	})

	t.Run("allow_suppresses_with_reason", func(t *testing.T) {
		runFixture(t, analyzerByName(t, "poolshare"), execStub, fixturePkg{pkg, `package fixture
import "` + Module + `/internal/exec"

func Sweep(workers, n int) error {
	hits := 0
	return exec.ForEach(workers, n, func(i int) error {
		//lint:allow poolshare guarded by a mutex in the real call site shape under test
		hits++
		return nil
	})
}
`})
	})
}
