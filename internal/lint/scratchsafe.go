package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// scratchsafeAnalyzer enforces the ownership half of the zero-allocation
// contract: memory backed by a //lint:scratch field never escapes its
// owner. The zero-alloc refactors hung reusable buffers off receivers in
// every hot kernel; the next invocation of any of those kernels rewrites
// the buffers wholesale, so a caller that retained an alias reads
// garbage — deterministically wrong garbage, which the CSV diff jobs can
// only catch when the corrupted value reaches an output.
//
// The analyzer checks every function in the //lint:hotpath set (the same
// transitive static call-graph walk hotalloc uses, so the two analyzers
// agree on reachability) plus every method of a type carrying tagged
// fields, and flags the escape channels:
//
//   - returning a scratch field, a re-slice of one, or a local aliasing
//     one (including append chains rooted at scratch);
//   - storing scratch into a package-level variable or into a struct that
//     is not the receiver;
//   - assigning scratch to a named result;
//   - closures that capture scratch and escape the call (returned or
//     stored), goroutines that capture scratch, and channel sends of
//     scratch.
//
// Aliases are tracked through locals with a forward taint pass: x :=
// s.buf[:0] makes x scratch-backed, and so is everything re-sliced,
// indexed (when the element itself is reference-like), or appended from
// it. Rehoming scratch onto the receiver (s.buf = append(s.buf, v),
// q.buckets[b] = ...) is the idiom the contract encourages and is always
// allowed, as is passing scratch as a plain call argument — callees are
// trusted not to retain arguments; the analyzer polices the channels a
// caller can actually observe.
func scratchsafeAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "scratchsafe",
		Doc:  "forbid //lint:scratch-backed memory from escaping its owner in hot kernels and scratch-owning methods",
	}
	// The checked set and scratch index span packages: computed once per
	// run from the full load, reused by every per-package pass.
	var (
		decls map[*types.Func]declSite
		roots map[*types.Func]*types.Func
		idx   *scratchIndex
	)
	a.Run = func(p *Pass) {
		if decls == nil {
			decls = funcDecls(p.All)
			roots = hotSet(decls)
			idx = scratchFields(p.All)
		}
		// Deterministic order: findings are globally sorted by position,
		// but walking in name order keeps any future tie-breaks stable.
		fns := make([]*types.Func, 0, len(decls))
		for fn := range decls {
			fns = append(fns, fn)
		}
		sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
		for _, fn := range fns {
			site := decls[fn]
			if site.Pkg != p.Pkg {
				continue // reported by the declaring package's own pass
			}
			var how string
			if root, hot := roots[fn]; hot {
				how = "in //lint:hotpath " + fn.Name()
				if root != fn {
					how = "in " + fn.Name() + ", statically reachable from //lint:hotpath " + root.Name()
				}
			} else if tn := receiverTypeName(site.Pkg.Info, site.Decl); tn != nil && idx.owners[tn] {
				how = "in " + fn.Name() + ", a method of scratch-carrying " + tn.Name()
			} else {
				continue
			}
			(&scratchCheck{p: p, info: site.Pkg.Info, fd: site.Decl, idx: idx, how: how,
				tainted: map[types.Object]*types.Var{},
				results: map[types.Object]bool{},
				covered: map[ast.Node]bool{},
			}).check()
		}
	}
	return a
}

// scratchCheck is one function's escape walk.
type scratchCheck struct {
	p    *Pass
	info *types.Info
	fd   *ast.FuncDecl
	idx  *scratchIndex
	how  string
	// tainted maps a local variable to the scratch field it aliases.
	tainted map[types.Object]*types.Var
	// results holds the named result objects — assigning scratch to one
	// escapes exactly like returning it.
	results map[types.Object]bool
	covered map[ast.Node]bool
}

func (c *scratchCheck) check() {
	if c.fd.Type.Results != nil {
		for _, f := range c.fd.Type.Results.List {
			for _, name := range f.Names {
				if o := c.info.Defs[name]; o != nil {
					c.results[o] = true
				}
			}
		}
	}
	// Forward taint pass: a local aliases scratch from its (re)assignment
	// onward. Syntactic order matches evaluation order for the
	// straight-line scratch-setup code this models (same approximation as
	// hotalloc's accepted-append pass).
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true // multi-value call results are fresh memory
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				root := c.scratchRoot(n.Rhs[i])
				if root == nil {
					continue
				}
				if o := c.info.Defs[id]; o != nil && refLike(o.Type()) {
					c.tainted[o] = root
				}
				if o := c.info.Uses[id]; o != nil && refLike(o.Type()) && !c.results[o] {
					c.tainted[o] = root
				}
			}
		case *ast.RangeStmt:
			root := c.scratchRoot(n.X)
			if root == nil || n.Value == nil {
				return true
			}
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
				if o := c.info.Defs[id]; o != nil && refLike(o.Type()) {
					c.tainted[o] = root
				}
			}
		}
		return true
	})
	ast.Inspect(c.fd.Body, c.sinkWalk)
}

// sinkWalk reports every statement that moves scratch-backed memory out
// of the owner's reach.
func (c *scratchCheck) sinkWalk(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			root := c.scratchRoot(r)
			if root == nil {
				continue
			}
			if _, isLit := ast.Unparen(r).(*ast.FuncLit); isLit {
				c.p.Report(r, "returned closure captures scratch field %s %s; it can run after the next invocation overwrites the buffer", root.Name(), c.how)
				continue
			}
			c.p.Report(r, "returns memory aliasing scratch field %s %s; the owner's next call overwrites it — copy into caller-owned storage or let the caller read the field", root.Name(), c.how)
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return true
		}
		for i, lhs := range n.Lhs {
			root := c.scratchRoot(n.Rhs[i])
			if root == nil {
				continue
			}
			c.checkStore(lhs, n.Rhs[i], root)
		}
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			if root := c.capturedScratch(lit); root != nil {
				c.p.Report(lit, "goroutine captures scratch field %s %s; it races with the owner's next invocation", root.Name(), c.how)
			}
		}
		for _, arg := range n.Call.Args {
			if root := c.scratchRoot(arg); root != nil {
				c.p.Report(arg, "goroutine receives scratch field %s %s; it races with the owner's next invocation", root.Name(), c.how)
			}
		}
	case *ast.SendStmt:
		if root := c.scratchRoot(n.Value); root != nil {
			c.p.Report(n.Value, "sends memory aliasing scratch field %s into a channel %s; the receiver outlives the call — send a copy", root.Name(), c.how)
		}
	}
	return true
}

// checkStore classifies one assignment of scratch-rooted memory by where
// it lands. Rehoming onto the receiver (or into other scratch) is the
// contract's idiom; everything else leaks.
func (c *scratchCheck) checkStore(lhs, rhs ast.Expr, root *types.Var) {
	if _, isLit := ast.Unparen(rhs).(*ast.FuncLit); isLit {
		// A scratch-capturing closure assigned to a local only becomes an
		// escape if the local later returns or stores; the taint pass
		// carries it there. Direct stores to globals/fields fall through.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if o := c.objOf(id); o != nil && !c.results[o] && !isPackageLevel(o) {
				return
			}
		}
	}
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		o := c.objOf(lhs)
		if o == nil || lhs.Name == "_" {
			return
		}
		switch {
		case c.results[o]:
			c.p.Report(lhs, "assigns memory aliasing scratch field %s to result %s %s; the caller retains it past the next invocation", root.Name(), lhs.Name, c.how)
		case isPackageLevel(o):
			c.p.Report(lhs, "stores memory aliasing scratch field %s into package-level %s %s; a global alias outlives every invocation", root.Name(), lhs.Name, c.how)
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		base, baseIdent := c.storeBase(lhs.(ast.Expr))
		if base == storeReceiver || base == storeScratch {
			return // rehoming onto the owner: the blessed idiom
		}
		where := "a non-receiver struct"
		if base == storeGlobal {
			where = "package-level state"
		} else if _, isStar := lhs.(*ast.StarExpr); isStar {
			where = "a pointer the owner does not control"
		}
		name := ""
		if baseIdent != "" {
			name = " (" + baseIdent + ")"
		}
		c.p.Report(lhs.(ast.Expr), "stores memory aliasing scratch field %s into %s%s %s; scratch may only be rehomed onto its receiver", root.Name(), where, name, c.how)
	}
}

type storeBaseKind int

const (
	storeReceiver storeBaseKind = iota
	storeScratch
	storeGlobal
	storeOther
)

// storeBase resolves where a selector/index/deref store target is rooted.
func (c *scratchCheck) storeBase(e ast.Expr) (storeBaseKind, string) {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if v, ok := c.info.Uses[t.Sel].(*types.Var); ok && c.idx.fields[v] {
				return storeScratch, v.Name()
			}
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			o := c.objOf(t)
			if o == nil {
				return storeOther, t.Name
			}
			if recv := receiverVar(c.info, c.fd); recv != nil && o == recv {
				return storeReceiver, t.Name
			}
			if _, ok := c.tainted[o]; ok {
				return storeScratch, t.Name
			}
			if isPackageLevel(o) {
				return storeGlobal, t.Name
			}
			return storeOther, t.Name
		default:
			return storeOther, ""
		}
	}
}

// scratchRoot reports the scratch field an expression's memory aliases,
// or nil. Aliasing flows through re-slices, reference-typed element and
// field accesses, address-taking, derefs, append chains, tainted locals,
// and closures that capture scratch.
func (c *scratchCheck) scratchRoot(e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := c.info.Uses[e.Sel].(*types.Var); ok && c.idx.fields[v] {
			return v
		}
		if t := c.info.TypeOf(e); t != nil && refLike(t) {
			return c.scratchRoot(e.X)
		}
	case *ast.SliceExpr:
		return c.scratchRoot(e.X)
	case *ast.IndexExpr:
		if t := c.info.TypeOf(e); t != nil && refLike(t) {
			return c.scratchRoot(e.X)
		}
	case *ast.StarExpr:
		return c.scratchRoot(e.X)
	case *ast.UnaryExpr:
		return c.scratchRoot(e.X)
	case *ast.Ident:
		if o := c.objOf(e); o != nil {
			return c.tainted[o]
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := c.info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				return c.scratchRoot(e.Args[0])
			}
		}
	case *ast.FuncLit:
		return c.capturedScratch(e)
	}
	return nil
}

// capturedScratch reports a scratch field the literal's body references —
// directly or through a tainted local captured from the enclosing
// function — or nil.
func (c *scratchCheck) capturedScratch(lit *ast.FuncLit) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if v, ok := c.info.Uses[n.Sel].(*types.Var); ok && c.idx.fields[v] {
				found = v
			}
		case *ast.Ident:
			if o := c.info.Uses[n]; o != nil {
				if o.Pos() >= lit.Pos() && o.Pos() <= lit.End() {
					return true // the literal's own declaration
				}
				if root, ok := c.tainted[o]; ok {
					found = root
				}
			}
		}
		return true
	})
	return found
}

func (c *scratchCheck) objOf(id *ast.Ident) types.Object {
	if o := c.info.Uses[id]; o != nil {
		return o
	}
	return c.info.Defs[id]
}

// isPackageLevel reports whether the object is declared at package scope.
func isPackageLevel(o types.Object) bool {
	return o.Pkg() != nil && o.Parent() == o.Pkg().Scope()
}

// refLike reports whether values of the type share backing storage when
// copied — the types scratch aliasing can flow through. Strings are
// immutable and structs are copied by value, so neither propagates
// (a struct holding a scratch slice is rare enough that the store sinks
// catch the interesting cases directly).
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature:
		return true
	}
	return false
}
