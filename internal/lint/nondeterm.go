package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Module is the import-path prefix of this repository; nondeterm scopes
// itself to the module's internal tree, where the determinism contract
// holds (examples and demo binaries may be as casual as they like).
const Module = "github.com/openspace-project/openspace"

// seedFuncs are the blessed seed-derivation paths: every parallel task
// derives its stream from (base seed, task coordinates) through SplitMix64
// so results never depend on worker scheduling. DomainSeed is Seed with a
// named stream family folded in first (see the seeddomain analyzer).
var seedFuncs = map[string]bool{
	Module + "/internal/exec.Seed":       true,
	Module + "/internal/exec.DomainSeed": true,
}

// nondetermAnalyzer forbids the three ways nondeterminism has historically
// entered simulation codebases: reading the wall clock, drawing from the
// process-global math/rand state (ordered by goroutine scheduling), and
// seeding a fresh source from anything that is not a constant, a plumbed
// seed variable, or an exec.Seed derivation.
func nondetermAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "nondeterm",
		Doc:  "forbid time.Now, global math/rand, and non-derived RNG seeds in internal packages",
	}
	a.Run = func(p *Pass) {
		if !strings.HasPrefix(p.Pkg.PkgPath, Module+"/internal/") {
			return
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calledFunc(p, call)
				if fn == nil {
					return true
				}
				switch {
				case fn.FullName() == "time.Now":
					p.Report(call, "time.Now makes output depend on the wall clock; take the timestamp as a parameter or config field")
				case isGlobalRandFunc(fn):
					p.Report(call, "global math/rand.%s draws from process-shared state whose order depends on goroutine scheduling; thread a task-owned *rand.Rand derived via exec.RNG(seed, coords...)", fn.Name())
				case isRandSourceCtor(fn) && len(call.Args) > 0:
					checkSeedExpr(p, call.Args[0])
				}
				return true
			})
		}
	}
	return a
}

// calledFunc resolves a call's callee to a *types.Func, or nil for
// conversions, builtins, and calls through function-typed variables.
func calledFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = p.ObjectOf(fun.Sel)
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isGlobalRandFunc reports whether fn is a package-level math/rand (or
// math/rand/v2) function drawing from the shared global source.
// Constructors are fine: they create the task-owned generators the
// contract requires.
func isGlobalRandFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false // methods on *rand.Rand are task-owned by construction
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// isRandSourceCtor reports whether fn constructs a math/rand source whose
// seed argument must be scrutinized.
func isRandSourceCtor(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	return fn.Type().(*types.Signature).Recv() == nil && (fn.Name() == "NewSource" || fn.Name() == "NewPCG")
}

// checkSeedExpr walks a seed expression and reports any call that could
// smuggle nondeterminism into the source: constants, plumbed variables,
// arithmetic on them, conversions, exec.Seed derivations, and draws from
// an existing *rand.Rand are all fine; any other function call is not a
// reproducible seed.
func checkSeedExpr(p *Pass, seed ast.Expr) {
	ast.Inspect(seed, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion like int64(x): keep scrutinizing x
		}
		fn := calledFunc(p, call)
		if fn != nil {
			if seedFuncs[fn.FullName()] {
				return false // the blessed derivation
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isRandRand(recv.Type()) {
				return false // child seed drawn from a task-owned generator
			}
		}
		name := "a function"
		if fn != nil {
			name = fn.FullName()
		}
		p.Report(call, "seed expression calls %s; seeds must be constants, plumbed variables, or exec.Seed(base, coords...) derivations so reruns reproduce", name)
		return false
	})
}

// isRandRand reports whether t is math/rand.Rand (possibly via pointer).
func isRandRand(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && (obj.Pkg().Path() == "math/rand" || obj.Pkg().Path() == "math/rand/v2") && obj.Name() == "Rand"
}
