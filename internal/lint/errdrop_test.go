package lint

import "testing"

// sink is a writer/closer/flusher fixture type shared by the errdrop cases.
const sinkSrc = `
type Sink struct{}
func (Sink) Write(p []byte) (int, error) { return len(p), nil }
func (Sink) Flush() error                { return nil }
func (Sink) Close() error                { return nil }
type Reader struct{}
func (Reader) Close() error { return nil }
`

// engineSrc is a scheduler fixture with sim.Engine's Schedule/After shape.
const engineSrc = `
type Engine struct{}
func (*Engine) Schedule(atS float64, fn func()) error { return nil }
func (*Engine) After(delayS float64, fn func()) error { return nil }
func (*Engine) Now() float64                          { return 0 }
`

func TestErrdrop(t *testing.T) {
	ed := analyzerByName(t, "errdrop")
	pkg := Module + "/internal/fixture"

	cases := []struct {
		name string
		pkgs []fixturePkg
	}{
		{"write_discarded_flagged", []fixturePkg{{pkg, `package fixture
` + sinkSrc + `
func Emit(s Sink, p []byte) {
	s.Write(p) // want "errdrop: error from Write is discarded"
}
`}}},
		{"flush_discarded_flagged", []fixturePkg{{pkg, `package fixture
` + sinkSrc + `
func Emit(s Sink) {
	s.Flush() // want "errdrop: error from Flush is discarded"
}
`}}},
		{"close_discarded_flagged", []fixturePkg{{pkg, `package fixture
` + sinkSrc + `
func Emit(s Sink) {
	s.Close() // want "errdrop: error from Close is discarded"
}
`}}},
		{"deferred_close_flagged", []fixturePkg{{pkg, `package fixture
` + sinkSrc + `
func Emit(s Sink) {
	defer s.Close() // want "errdrop: deferred Close discards its error"
}
`}}},
		{"interface_writer_flagged", []fixturePkg{{pkg, `package fixture
import "io"
func Emit(w io.WriteCloser, p []byte) {
	w.Write(p) // want "errdrop: error from Write is discarded"
	defer w.Close() // want "errdrop: deferred Close discards its error"
}
`}}},
		{"schedule_discarded_flagged", []fixturePkg{{pkg, `package fixture
` + engineSrc + `
func Tick(e *Engine) {
	e.Schedule(1, func() {}) // want "errdrop: error from Schedule is discarded"
}
`}}},
		{"after_discarded_flagged", []fixturePkg{{pkg, `package fixture
` + engineSrc + `
func Retry(e *Engine) {
	e.After(0.5, func() {}) // want "errdrop: error from After is discarded"
}
`}}},
		{"schedule_checked_clean", []fixturePkg{{pkg, `package fixture
` + engineSrc + `
func Tick(e *Engine) error {
	if err := e.Schedule(1, func() {}); err != nil {
		return err
	}
	return e.After(0.5, func() {})
}
`}}},
		{"schedule_shape_mismatch_clean", []fixturePkg{{pkg, `package fixture
// Same names, different shapes: not schedulers, must stay clean.
type Planner struct{}
func (Planner) Schedule() error             { return nil }
func (Planner) After(d float64) (int, bool) { return 0, false }
func Plan(p Planner) {
	p.After(1)
}
`}}},
		{"checked_clean", []fixturePkg{{pkg, `package fixture
` + sinkSrc + `
func Emit(s Sink, p []byte) error {
	if _, err := s.Write(p); err != nil {
		return err
	}
	if err := s.Flush(); err != nil {
		return err
	}
	return s.Close()
}
`}}},
		{"blank_assign_clean", []fixturePkg{{pkg, `package fixture
` + sinkSrc + `
func Emit(s Sink, p []byte) {
	_, _ = s.Write(p) // explicit, reviewable discard
	_ = s.Close()
}
`}}},
		{"reader_close_clean", []fixturePkg{{pkg, `package fixture
import "io"
` + sinkSrc + `
func Drain(r Reader, rc io.ReadCloser) {
	defer r.Close()
	defer rc.Close()
}
`}}},
		{"infallible_writers_clean", []fixturePkg{{pkg, `package fixture
import (
	"bytes"
	"strings"
)
func Emit(p []byte) {
	var b bytes.Buffer
	b.Write(p)
	var sb strings.Builder
	sb.Write(p)
}
`}}},
		{"allow_directive", []fixturePkg{{pkg, `package fixture
` + sinkSrc + `
func Emit(s Sink, p []byte) {
	s.Write(p) //lint:allow errdrop this sink is documented to never fail
}
`}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runFixture(t, ed, tc.pkgs...) })
	}
}
