package lint

import "testing"

func TestFloateq(t *testing.T) {
	fe := analyzerByName(t, "floateq")
	pkg := Module + "/internal/fixture"

	cases := []struct {
		name string
		pkgs []fixturePkg
	}{
		{"computed_eq_flagged", []fixturePkg{{pkg, `package fixture
func Same(a, b float64) bool {
	return a == b // want "floateq: exact floating-point == comparison"
}
`}}},
		{"computed_neq_flagged", []fixturePkg{{pkg, `package fixture
func Differ(a, b float64) bool {
	return a != b // want "floateq: exact floating-point != comparison"
}
`}}},
		{"float32_flagged", []fixturePkg{{pkg, `package fixture
func Same(a, b float32) bool {
	return a == b // want "floateq: exact floating-point == comparison"
}
`}}},
		{"arithmetic_operands_flagged", []fixturePkg{{pkg, `package fixture
func Same(a, b float64) bool {
	return a*2 == b+1 // want "floateq: exact floating-point == comparison"
}
`}}},
		{"named_float_type_flagged", []fixturePkg{{pkg, `package fixture
type Seconds float64
func Same(a, b Seconds) bool {
	return a == b // want "floateq: exact floating-point == comparison"
}
`}}},
		{"constant_sentinel_clean", []fixturePkg{{pkg, `package fixture
const eps = 1e-9
func Checks(a float64) bool {
	return a == 0 || a != 1.5 || a == eps
}
`}}},
		{"int_compare_clean", []fixturePkg{{pkg, `package fixture
func Same(a, b int) bool { return a == b }
`}}},
		{"tolerance_clean", []fixturePkg{{pkg, `package fixture
import "math"
func Close(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}
`}}},
		{"allow_directive", []fixturePkg{{pkg, `package fixture
import "sort"
func Order(xs []float64, ids []string) {
	sort.Slice(ids, func(i, j int) bool {
		if xs[i] != xs[j] { //lint:allow floateq exact tie-break keeps the sort deterministic
			return xs[i] < xs[j]
		}
		return ids[i] < ids[j]
	})
}
`}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runFixture(t, fe, tc.pkgs...) })
	}
}
