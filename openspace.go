// Package openspace is the public API of the OpenSpace reference
// implementation — a from-scratch build of the architecture proposed in
// "A Roadmap for the Democratization of Space-Based Communications"
// (HotNets '24): an open, interoperable LEO satellite Internet operated by
// many independent providers rather than one vertically integrated firm.
//
// The package re-exports the stable surface of the internal subsystems:
//
//   - Orbits and constellations (Keplerian propagation, Walker generators,
//     the Iridium-like reference constellation of the paper's Figure 2a).
//   - Federations (Network): multiple providers with their own satellites,
//     ground stations, authentication servers and traffic ledgers, wired
//     together by the standardized protocols of §2.
//   - End-to-end operations: user association with home-ISP authentication
//     and roaming certificates, routing over heterogeneous multi-owner
//     ISLs, gateway metering, and §3's cross-verifiable accounting.
//   - The experiment harness regenerating every figure of the paper's
//     evaluation (see the Fig2a/Fig2b/Fig2c functions and friends).
//
// Quickstart:
//
//	net, _ := openspace.QuickFederation(3, 42)
//	net.AddUser("alice", "prov-0", openspace.LatLon{Lat: -1.29, Lon: 36.82})
//	net.BuildTopology(0, 600, 60)
//	net.Associate("alice", 0)
//	delivery, _ := net.Send("alice", "gs-0", 1<<30, 0)
//	fmt.Println(delivery.LatencyS)
package openspace

import (
	"fmt"

	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/economics"
	"github.com/openspace-project/openspace/internal/experiments"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/handover"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/phy"
	"github.com/openspace-project/openspace/internal/regulation"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/security"
	"github.com/openspace-project/openspace/internal/topo"
)

// Geometry and orbits.
type (
	// LatLon is a geodetic position in degrees.
	LatLon = geo.LatLon
	// Vec3 is an Earth-centred Cartesian position in km.
	Vec3 = geo.Vec3
	// Cap is a spherical coverage footprint.
	Cap = geo.Cap
	// Elements is a classical Keplerian element set.
	Elements = orbit.Elements
	// Satellite is one spacecraft (ID + orbit).
	Satellite = orbit.Satellite
	// Constellation is an ordered satellite set.
	Constellation = orbit.Constellation
	// WalkerConfig specifies a Walker Star/Delta constellation.
	WalkerConfig = orbit.WalkerConfig
	// ContactWindow is a ground-visibility interval.
	ContactWindow = orbit.ContactWindow
)

// Federation assembly.
type (
	// NetworkConfig assembles a federation of providers.
	NetworkConfig = core.NetworkConfig
	// ProviderConfig describes one member firm.
	ProviderConfig = core.ProviderConfig
	// SatelliteConfig describes one spacecraft in a fleet.
	SatelliteConfig = core.SatelliteConfig
	// GroundStationConfig describes one gateway station.
	GroundStationConfig = core.GroundStationConfig
	// Network is an assembled OpenSpace federation.
	Network = core.Network
	// Provider is a federation member at run time.
	Provider = core.Provider
	// User is a subscriber terminal at run time.
	User = core.User
	// Delivery reports one end-to-end transfer.
	Delivery = core.Delivery
	// Scenario is a discrete-event workload for RunScenario.
	Scenario = core.Scenario
	// ScenarioResult aggregates one scenario run.
	ScenarioResult = core.ScenarioResult
	// HandoverPlan is a planned satellite handover.
	HandoverPlan = core.HandoverPlan
	// GatewayChoice is one scored gateway option.
	GatewayChoice = core.GatewayChoice
	// FederationGain compares solo and federated coverage.
	FederationGain = core.FederationGain
	// TopologyConfig sets link feasibility rules.
	TopologyConfig = topo.Config
)

// Physical layer.
type (
	// Band identifies a spectrum band.
	Band = phy.Band
	// RFTerminal describes a radio terminal.
	RFTerminal = phy.RFTerminal
	// LaserTerminal describes an optical ISL terminal.
	LaserTerminal = phy.LaserTerminal
)

// Spectrum bands.
const (
	// BandUHF is the mandatory smallsat ISL band.
	BandUHF = phy.BandUHF
	// BandS is the higher-rate RF ISL band.
	BandS = phy.BandS
	// BandKu is the ground-segment band.
	BandKu = phy.BandKu
	// BandKa is the high-capacity gateway band.
	BandKa = phy.BandKa
	// BandOptical is the laser upgrade path.
	BandOptical = phy.BandOptical
)

// Physical-layer reference terminals.
var (
	// StandardUHF is the minimal mandatory RF terminal.
	StandardUHF = phy.StandardUHF
	// StandardSBand is the higher-rate RF ISL terminal.
	StandardSBand = phy.StandardSBand
	// ConLCT80 is the paper's reference laser terminal ($500k, 15 kg).
	ConLCT80 = phy.ConLCT80
)

// Topology and routing (the §2.2 machinery, exposed for custom scenarios).
type (
	// Snapshot is the network graph at one instant.
	Snapshot = topo.Snapshot
	// TimeExpanded is a series of snapshots — the public, precomputable
	// evolution of the network.
	TimeExpanded = topo.TimeExpanded
	// SatSpec feeds one satellite into a topology build.
	SatSpec = topo.SatSpec
	// GroundSpec feeds one ground station into a topology build.
	GroundSpec = topo.GroundSpec
	// UserSpec feeds one user terminal into a topology build.
	UserSpec = topo.UserSpec
	// RoutePath is a computed route.
	RoutePath = routing.Path
	// CostFunc scores edges for path selection.
	CostFunc = routing.CostFunc
	// QoSPolicy parameterises heterogeneity-aware routing.
	QoSPolicy = routing.QoSPolicy
	// ServiceClass is an advertised QoS tier (interactive/standard/bulk).
	ServiceClass = routing.ServiceClass
	// ScheduledRoute is a store-and-forward (contact-graph) route.
	ScheduledRoute = routing.ScheduledRoute
)

// Service classes.
const (
	// ClassInteractive is the latency- and bandwidth-sensitive tier.
	ClassInteractive = routing.ClassInteractive
	// ClassStandard is the balanced default tier.
	ClassStandard = routing.ClassStandard
	// ClassBulk is the cost-optimised background tier.
	ClassBulk = routing.ClassBulk
)

// Topology and routing functions.
var (
	// BuildSnapshot constructs the network graph at one instant.
	BuildSnapshot = topo.Build
	// BuildTimeExpanded precomputes a snapshot series over a horizon.
	BuildTimeExpanded = topo.BuildTimeExpanded
	// ShortestPath runs Dijkstra under a cost function.
	ShortestPath = routing.ShortestPath
	// KShortestPaths returns loopless alternatives in cost order (Yen).
	KShortestPaths = routing.KShortestPaths
	// DisjointPaths returns edge-disjoint routes for load balancing and
	// failure independence.
	DisjointPaths = routing.DisjointPaths
	// EarliestArrival computes a store-and-forward route over time
	// (contact-graph routing) for sparse deployments.
	EarliestArrival = routing.EarliestArrival
	// LatencyCost scores edges by propagation delay.
	LatencyCost = routing.LatencyCost
	// HopCost scores every edge 1.
	HopCost = routing.HopCost
	// DefaultQoS returns the balanced heterogeneity-aware policy.
	DefaultQoS = routing.DefaultQoS
)

// Economics.
type (
	// Ledger is a provider's carried-traffic account (§3).
	Ledger = economics.Ledger
	// Invoice is one provider-to-provider charge.
	Invoice = economics.Invoice
	// RateCard holds bilateral carriage prices.
	RateCard = economics.RateCard
	// PeeringCandidate is a symmetric pair that should peer.
	PeeringCandidate = economics.PeeringCandidate
	// CapexModel prices fleet buildouts.
	CapexModel = economics.CapexModel
	// FleetPlan describes a provider's buildout.
	FleetPlan = economics.FleetPlan
)

// Handover.
type (
	// HandoverTimeline is a simulated session's handover history.
	HandoverTimeline = handover.Timeline
	// HandoverEvent is one handover.
	HandoverEvent = handover.Event
	// HandoverPredictor computes successor handovers from public orbits.
	HandoverPredictor = handover.Predictor
	// HandoverSat is one satellite known to a predictor.
	HandoverSat = handover.Sat
	// PredictiveCosts parameterises OpenSpace's fast handover path.
	PredictiveCosts = handover.PredictiveCosts
	// ReauthCosts parameterises the full re-association baseline.
	ReauthCosts = handover.ReauthCosts
)

// Handover constructors.
var (
	// NewHandoverPredictor creates a predictor for one ground user.
	NewHandoverPredictor = handover.NewPredictor
	// DefaultPredictiveCosts returns the standard fast-path costs.
	DefaultPredictiveCosts = handover.DefaultPredictiveCosts
	// DefaultReauthCosts returns the standard re-association costs.
	DefaultReauthCosts = handover.DefaultReauthCosts
)

// Security (§5(6)): baseline end-to-end encryption and bad-actor cutoff.
type (
	// SecureSession is authenticated end-to-end encryption for user data.
	SecureSession = security.Session
	// Envelope is one sealed message.
	Envelope = security.Envelope
	// MisbehaviourReport is a signed accusation between providers.
	MisbehaviourReport = security.Report
	// QuarantineRegistry collects reports and quarantines by quorum.
	QuarantineRegistry = security.Registry
)

// Misbehaviour report kinds.
const (
	// ReportLedgerFraud flags failed ledger cross-verification.
	ReportLedgerFraud = security.KindLedgerFraud
	// ReportTrafficDrop flags relayed traffic that never arrived.
	ReportTrafficDrop = security.KindTrafficDrop
	// ReportInterception flags tampering evidence on the accused's paths.
	ReportInterception = security.KindInterception
)

// Security constructors.
var (
	// NewSecureSession creates one direction of an encrypted session.
	NewSecureSession = security.NewSession
	// NewQuarantineRegistry creates a registry with the given quorum.
	NewQuarantineRegistry = security.NewRegistry
	// ExcludeQuarantined wraps a routing cost to avoid quarantined members.
	ExcludeQuarantined = security.ExcludeQuarantined
)

// Regulation (§5(3)): regions, data residency, spectrum, licensing.
type (
	// RegulatoryAtlas partitions the Earth into jurisdictions.
	RegulatoryAtlas = regulation.Atlas
	// RegulatoryPolicy is the rule set a federation operates under.
	RegulatoryPolicy = regulation.Policy
	// RegulatoryRegion is one named jurisdiction.
	RegulatoryRegion = regulation.Region
)

// Regulation constructors.
var (
	// DefaultAtlas returns the coarse continental partition.
	DefaultAtlas = regulation.DefaultAtlas
	// NewAtlas validates and assembles a custom atlas.
	NewAtlas = regulation.NewAtlas
	// ResidencyFilter enforces data-residency at path computation.
	ResidencyFilter = regulation.ResidencyFilter
)

// Incentives (§5(4)).
type (
	// IncentiveReport is the membership business case for one provider.
	IncentiveReport = economics.IncentiveReport
	// CoverageEconomics monetises availability gains.
	CoverageEconomics = economics.CoverageEconomics
)

// Incentive functions.
var (
	// Incentive computes one provider's membership case.
	Incentive = economics.Incentive
	// RevenueShares splits a pot by carried volume.
	RevenueShares = economics.RevenueShares
)

// Constructors and helpers re-exported from the subsystems.
var (
	// NewNetwork federates the configured providers.
	NewNetwork = core.NewNetwork
	// SplitConstellation partitions a constellation across fleets.
	SplitConstellation = core.SplitConstellation
	// Iridium returns the paper's reference Walker Star (66/6, 780 km).
	Iridium = orbit.Iridium
	// CBOReference returns the CBO's 72-satellite reference configuration.
	CBOReference = orbit.CBOReference
	// RandomConstellation generates uncoordinated random circular orbits.
	RandomConstellation = orbit.RandomCircular
	// DefaultTopology returns the standard link feasibility rules.
	DefaultTopology = topo.DefaultConfig
	// DefaultCapex returns the capital cost model with the paper's figures.
	DefaultCapex = economics.DefaultCapex
	// Settle prices a ledger against a rate card.
	Settle = economics.Settle
	// NetBalances folds invoices into per-provider positions.
	NetBalances = economics.NetBalances
	// PeeringCandidates finds symmetric pairs that should peer.
	PeeringCandidates = economics.PeeringCandidates
	// CrossVerify compares two providers' ledgers.
	CrossVerify = economics.CrossVerify
)

// Experiment entry points (the paper's evaluation and the extensions
// indexed in DESIGN.md).
var (
	// Fig2a builds and measures the reference constellation.
	Fig2a = experiments.Fig2a
	// Fig2b sweeps latency vs constellation size.
	Fig2b = experiments.Fig2b
	// DefaultFig2b returns the paper-default sweep configuration.
	DefaultFig2b = experiments.DefaultFig2b
	// Fig2c sweeps coverage vs constellation size.
	Fig2c = experiments.Fig2c
	// DefaultFig2c returns the paper-default sweep configuration.
	DefaultFig2c = experiments.DefaultFig2c
)

// QuickFederation builds a ready-to-use federation: the Iridium reference
// constellation split across n providers (30 % of satellites carry laser
// terminals), one gateway ground station per provider at spread locations,
// and deterministic keys from seed. Ground stations are named gs-0 … gs-(n-1).
func QuickFederation(n int, seed int64) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("openspace: providers %d must be positive", n)
	}
	c, err := Iridium().Build()
	if err != nil {
		return nil, err
	}
	fleets := SplitConstellation(c, n, 0.3)
	sites := []LatLon{
		{Lat: 47.6, Lon: -122.3},   // seattle
		{Lat: -1.29, Lon: 36.82},   // nairobi
		{Lat: 51.51, Lon: -0.13},   // london
		{Lat: -33.87, Lon: 151.21}, // sydney
		{Lat: 35.68, Lon: 139.69},  // tokyo
		{Lat: -23.55, Lon: -46.63}, // sao paulo
	}
	providers := make([]ProviderConfig, n)
	for i := range providers {
		providers[i] = ProviderConfig{
			ID:            fmt.Sprintf("prov-%d", i),
			Satellites:    fleets[i],
			CarriagePerGB: 0.20,
			GroundStations: []GroundStationConfig{{
				ID:           fmt.Sprintf("gs-%d", i),
				Pos:          sites[i%len(sites)],
				BackhaulBps:  10e9,
				PricePerGB:   0.05,
				VisitorSurge: 2,
			}},
		}
	}
	return NewNetwork(NetworkConfig{Providers: providers, Seed: seed})
}
