package openspace

import (
	"testing"
)

func TestQuickFederationEndToEnd(t *testing.T) {
	net, err := QuickFederation(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Providers(); len(got) != 3 {
		t.Fatalf("providers = %v", got)
	}
	if _, err := net.AddUser("alice", "prov-0", LatLon{Lat: -1.29, Lon: 36.82}); err != nil {
		t.Fatal(err)
	}
	if err := net.BuildTopology(0, 300, 60); err != nil {
		t.Fatal(err)
	}
	if err := net.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	d, err := net.Send("alice", "gs-0", 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.LatencyS <= 0 || d.LatencyS > 1 {
		t.Errorf("latency %v s implausible", d.LatencyS)
	}
	if _, err := QuickFederation(0, 1); err == nil {
		t.Error("zero providers should fail")
	}
}

func TestPublicConstellationAPI(t *testing.T) {
	c, err := Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 66 {
		t.Errorf("Iridium size %d", c.Len())
	}
	cbo, err := CBOReference().Build()
	if err != nil {
		t.Fatal(err)
	}
	if cbo.Len() != 72 {
		t.Errorf("CBO size %d", cbo.Len())
	}
}

func TestPublicExperimentAPI(t *testing.T) {
	r, err := Fig2a(2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoverageExact < 0.9 {
		t.Errorf("coverage %v", r.CoverageExact)
	}
	cfg := DefaultFig2b()
	cfg.MaxSats = 20
	cfg.Step = 10
	cfg.Trials = 4
	if _, err := Fig2b(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPublicEconomicsAPI(t *testing.T) {
	capex := DefaultCapex()
	cost, err := capex.FleetUSD(FleetPlan{Satellites: 11, LaserFraction: 0.3, GroundStations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Errorf("fleet cost %v", cost)
	}
	var l *Ledger
	_ = l // Ledger is re-exported; real instances come from networks
}

func TestPublicScenarioAPI(t *testing.T) {
	net, err := QuickFederation(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddUser("u", "prov-0", LatLon{Lat: 40.44, Lon: -79.99}); err != nil {
		t.Fatal(err)
	}
	res, err := net.RunScenario(Scenario{
		DurationS: 300, SnapshotIntervalS: 60,
		PerUserRate: 0.05, MinBytes: 1000, MaxBytes: 1_000_000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransfersDelivered == 0 {
		t.Error("scenario delivered nothing")
	}
}

func TestPublicSecurityAPI(t *testing.T) {
	s, err := NewSecureSession([]byte("secret"), "dir")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSecureSession([]byte("secret"), "dir")
	if err != nil {
		t.Fatal(err)
	}
	env := s.Seal([]byte("hello"), nil)
	if msg, err := r.Open(env, nil); err != nil || string(msg) != "hello" {
		t.Errorf("round trip: %q, %v", msg, err)
	}
	reg, err := NewQuarantineRegistry(1)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Quarantined("anyone") {
		t.Error("fresh registry should quarantine no one")
	}
}

func TestPublicRegulationAPI(t *testing.T) {
	atlas := DefaultAtlas()
	if got := atlas.RegionOf(LatLon{Lat: 51.5, Lon: -0.1}); got != "europe" {
		t.Errorf("london region = %q", got)
	}
	policy := RegulatoryPolicy{Residency: map[string][]string{"europe": {"europe"}}}
	if policy.MayDownlink("europe", "asia") {
		t.Error("residency rule ignored")
	}
}

func TestPublicIncentiveAPI(t *testing.T) {
	net, err := QuickFederation(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Incentive(net.Provider("prov-0").Ledger, RateCard{Default: 0.2},
		"prov-0", 0.8, 0.9, CoverageEconomics{Users: 100, RevenuePerUserHour: 0.01, Hours: 24})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoverageDividendUSD <= 0 {
		t.Errorf("dividend = %v", rep.CoverageDividendUSD)
	}
}

func TestPublicRoutingAPI(t *testing.T) {
	c, err := Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
	}
	users := []UserSpec{{ID: "u", Provider: "p", Pos: LatLon{Lat: -1.29, Lon: 36.82}}}
	grounds := []GroundSpec{{ID: "g", Provider: "p", Pos: LatLon{Lat: 51.51, Lon: -0.13}}}
	snap := BuildSnapshot(0, DefaultTopology(), sats, grounds, users)
	if _, err := ShortestPath(snap, "u", "g", LatencyCost(0)); err != nil {
		t.Fatalf("shortest path: %v", err)
	}
	if _, err := ShortestPath(snap, "u", "g", ClassBulk.Policy().Cost()); err != nil {
		t.Fatalf("bulk class path: %v", err)
	}
	te, err := BuildTimeExpanded(0, 120, 60, DefaultTopology(), sats, grounds, users)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EarliestArrival(te, "u", "g", 0, 0); err != nil {
		t.Fatalf("earliest arrival: %v", err)
	}
	if _, err := DisjointPaths(snap, "u", "g", HopCost(), 2); err != nil {
		t.Fatalf("disjoint: %v", err)
	}
	if ClassInteractive.String() != "interactive" {
		t.Error("class alias broken")
	}
	if StandardSBand().Band != BandS || ConLCT80().CostUSD != 500_000 {
		t.Error("phy aliases broken")
	}
	_ = StandardUHF()
}
