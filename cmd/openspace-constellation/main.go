// Command openspace-constellation generates a Walker constellation, renders
// its sub-satellite points as an ASCII world map (the paper's Figure 2(a)
// view) and reports coverage and ISL statistics. It also generates the
// mega-constellation layouts: +Grid ISL wiring plans over Walker Deltas,
// multi-shell compositions, and the Starlink-class presets. With -csv it
// writes the satellite ground positions for external plotting; with
// -islcsv it writes the wiring plan.
//
// Usage:
//
//	openspace-constellation                       # the Iridium reference
//	openspace-constellation -sats 72 -planes 6 -incl 80 -phasing 1
//	openspace-constellation -random 40 -seed 7    # uncoordinated fleets
//	openspace-constellation -delta -sats 1584 -planes 72 -incl 53 -grid
//	openspace-constellation -preset starlink-gen1
//	openspace-constellation -shells 720:36:11:570:70,1584:72:17:550:53
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/openspace-project/openspace/internal/experiments"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

// options collects the CLI configuration.
type options struct {
	sats, planes, phasing int
	alt, incl             float64
	delta                 bool
	random                int
	seed                  int64
	atT                   float64
	mask                  float64
	grid                  bool
	preset                string
	shells                string
	csvPath               string
	islCSVPath            string
	tlePath               string
}

func main() {
	var o options
	flag.IntVar(&o.sats, "sats", 66, "total satellites (walker mode)")
	flag.IntVar(&o.planes, "planes", 6, "orbital planes (walker mode)")
	flag.IntVar(&o.phasing, "phasing", 2, "walker phasing factor F")
	flag.Float64Var(&o.alt, "alt", 780, "altitude in km")
	flag.Float64Var(&o.incl, "incl", 86.4, "inclination in degrees")
	flag.BoolVar(&o.delta, "delta", false, "walker delta (360° node spread) instead of star")
	flag.IntVar(&o.random, "random", 0, "generate N random uncoordinated orbits instead of a walker")
	flag.Int64Var(&o.seed, "seed", 1, "random seed for -random")
	flag.Float64Var(&o.atT, "t", 0, "epoch offset in seconds at which to snapshot")
	flag.Float64Var(&o.mask, "mask", 10, "ground elevation mask in degrees for coverage")
	flag.BoolVar(&o.grid, "grid", false, "plan +Grid ISL wiring and report link statistics (walker/shells/preset modes)")
	flag.StringVar(&o.preset, "preset", "", "named constellation: starlink-550, starlink-gen1")
	flag.StringVar(&o.shells, "shells", "", "multi-shell spec, comma-separated T:P:F:alt:incl walker deltas")
	flag.StringVar(&o.csvPath, "csv", "", "write sub-satellite points to this CSV file")
	flag.StringVar(&o.islCSVPath, "islcsv", "", "write the +Grid ISL plan (with link lengths at -t) to this CSV file")
	flag.StringVar(&o.tlePath, "tle", "", "export the constellation as a TLE catalogue to this file")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "openspace-constellation: %v\n", err)
		os.Exit(1)
	}
}

// generate builds the constellation (and wiring plan, when one applies)
// the flags describe.
func generate(o options) (*orbit.Constellation, []orbit.ISLPair, error) {
	switch {
	case o.preset != "":
		switch o.preset {
		case "starlink-550":
			w := orbit.StarlinkShell()
			c, err := w.Build()
			if err != nil {
				return nil, nil, err
			}
			pairs, err := w.GridISLs(w.DefaultGrid())
			if err != nil {
				return nil, nil, err
			}
			return c, pairs, nil
		case "starlink-gen1":
			return orbit.StarlinkGen1().Build()
		default:
			return nil, nil, fmt.Errorf("unknown preset %q (starlink-550, starlink-gen1)", o.preset)
		}
	case o.shells != "":
		m := orbit.MultiShell{Name: "custom"}
		for i, spec := range strings.Split(o.shells, ",") {
			w, err := parseShell(spec)
			if err != nil {
				return nil, nil, fmt.Errorf("shell %d: %w", i, err)
			}
			m.Shells = append(m.Shells, orbit.Shell{Walker: w, Grid: w.DefaultGrid()})
		}
		return m.Build()
	case o.random > 0:
		return orbit.RandomCircular(o.random, o.alt, rand.New(rand.NewSource(o.seed))), nil, nil
	default:
		w := orbit.WalkerConfig{
			Name: "custom", TotalSats: o.sats, Planes: o.planes, PhasingFactor: o.phasing,
			AltitudeKm: o.alt, InclinationDeg: o.incl, Star: !o.delta,
		}
		c, err := w.Build()
		if err != nil {
			return nil, nil, err
		}
		var pairs []orbit.ISLPair
		if o.grid {
			if pairs, err = w.GridISLs(w.DefaultGrid()); err != nil {
				return nil, nil, err
			}
		}
		return c, pairs, nil
	}
}

// parseShell reads one T:P:F:alt:incl walker-delta spec.
func parseShell(spec string) (orbit.WalkerConfig, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) != 5 {
		return orbit.WalkerConfig{}, fmt.Errorf("spec %q: want T:P:F:alt:incl", spec)
	}
	var nums [5]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return orbit.WalkerConfig{}, fmt.Errorf("spec %q field %d: %w", spec, i, err)
		}
		nums[i] = v
	}
	return orbit.WalkerConfig{
		TotalSats:      int(nums[0]),
		Planes:         int(nums[1]),
		PhasingFactor:  int(nums[2]),
		AltitudeKm:     nums[3],
		InclinationDeg: nums[4],
	}, nil
}

func run(o options) error {
	c, pairs, err := generate(o)
	if err != nil {
		return err
	}
	if o.grid && pairs == nil {
		return fmt.Errorf("-grid needs a walker, -shells, or -preset constellation")
	}

	points := make([]geo.LatLon, c.Len())
	for i, s := range c.Satellites {
		points[i] = s.Elements.SubSatellitePoint(o.atT)
	}
	renderMap(points)

	caps := c.Footprints(o.atT, o.mask)
	exact := geo.ExactCoverageFraction(caps, 10000)
	worst := geo.WorstCaseCoverageFraction(caps)
	fmt.Printf("constellation: %s | %d satellites | t=%.0fs\n", c.Name, c.Len(), o.atT)
	fmt.Printf("coverage @ %.0f° mask: exact %.1f%% | worst-case rule %.1f%%\n",
		o.mask, exact*100, worst*100)
	period := c.Satellites[0].Elements.PeriodS()
	fmt.Printf("orbital period (first shell): %.1f min\n", period/60)

	if len(pairs) > 0 {
		if err := reportISLPlan(c, pairs, o.atT); err != nil {
			return err
		}
	}

	if o.csvPath != "" {
		if err := writePointsCSV(o.csvPath, c, points); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.csvPath)
	}
	if o.islCSVPath != "" {
		if len(pairs) == 0 {
			return fmt.Errorf("-islcsv needs a +Grid plan (use -grid, -shells, or -preset)")
		}
		if err := writeISLCSV(o.islCSVPath, c, pairs, o.atT); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d planned ISLs)\n", o.islCSVPath, len(pairs))
	}
	if o.tlePath != "" {
		if err := writeTLE(o.tlePath, c); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d TLE sets)\n", o.tlePath, c.Len())
	}
	return nil
}

// islLengths computes each planned link's length at time t.
func islLengths(c *orbit.Constellation, pairs []orbit.ISLPair, t float64) []float64 {
	pos := make(map[string]geo.Vec3, c.Len())
	for _, s := range c.Satellites {
		pos[s.ID] = s.Elements.PositionECEF(t)
	}
	lengths := make([]float64, len(pairs))
	for i, p := range pairs {
		lengths[i] = pos[p.A].DistanceKm(pos[p.B])
	}
	return lengths
}

// reportISLPlan summarises the wiring plan: link count and degree (2|E|/N),
// length spread, and how many planned links are feasible at t under the
// default laser terminal's range with line of sight.
func reportISLPlan(c *orbit.Constellation, pairs []orbit.ISLPair, t float64) error {
	lengths := islLengths(c, pairs, t)
	pos := make(map[string]geo.Vec3, c.Len())
	for _, s := range c.Satellites {
		pos[s.ID] = s.Elements.PositionECEF(t)
	}
	minL, maxL, sum := math.Inf(1), 0.0, 0.0
	feasible := 0
	rangeKm := topo.DefaultConfig().LaserRangeKm
	for i, p := range pairs {
		l := lengths[i]
		sum += l
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
		if l <= rangeKm && geo.LineOfSight(pos[p.A], pos[p.B]) {
			feasible++
		}
	}
	fmt.Printf("+Grid plan: %d ISLs | mean degree %.2f | length %.0f–%.0f km (mean %.0f)\n",
		len(pairs), 2*float64(len(pairs))/float64(c.Len()), minL, maxL, sum/float64(len(pairs)))
	fmt.Printf("feasible at t=%.0fs (laser range %.0f km + line of sight): %d/%d (%.1f%%)\n",
		t, rangeKm, feasible, len(pairs), 100*float64(feasible)/float64(len(pairs)))
	return nil
}

func writePointsCSV(path string, c *orbit.Constellation, points []geo.LatLon) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{c.Satellites[i].ID,
			fmt.Sprintf("%.4f", p.Lat), fmt.Sprintf("%.4f", p.Lon)}
	}
	if err := experiments.WriteCSV(f, []string{"sat", "lat_deg", "lon_deg"}, rows); err != nil {
		f.Close() //lint:allow errdrop the CSV write error above is the primary failure
		return err
	}
	return f.Close()
}

func writeISLCSV(path string, c *orbit.Constellation, pairs []orbit.ISLPair, t float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	lengths := islLengths(c, pairs, t)
	rows := make([][]string, len(pairs))
	for i, p := range pairs {
		rows[i] = []string{p.A, p.B, fmt.Sprintf("%.2f", lengths[i])}
	}
	if err := experiments.WriteCSV(f, []string{"sat_a", "sat_b", "length_km"}, rows); err != nil {
		f.Close() //lint:allow errdrop the CSV write error above is the primary failure
		return err
	}
	return f.Close()
}

func writeTLE(path string, c *orbit.Constellation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Export in the catalogue format the paper's public-orbit argument
	// relies on: any other provider can ingest these lines.
	for i, s := range c.Satellites {
		t := orbit.FromElements(s.ID, 90000+i, s.Elements)
		l1, l2 := t.FormatTLE()
		if _, err := fmt.Fprintf(f, "%s\n%s\n%s\n", s.ID, l1, l2); err != nil {
			f.Close() //lint:allow errdrop the TLE write error above is the primary failure
			return err
		}
	}
	return f.Close()
}

func renderMap(points []geo.LatLon) {
	const width, height = 72, 24
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	for _, p := range points {
		col := int((p.Lon + 180) / 360 * float64(width-1))
		row := int((90 - p.Lat) / 180 * float64(height-1))
		col = clamp(col, 0, width-1)
		row = clamp(row, 0, height-1)
		grid[row][col] = '@'
	}
	for _, line := range grid {
		fmt.Printf("  %s\n", line)
	}
}

func clamp(v, lo, hi int) int {
	return int(math.Max(float64(lo), math.Min(float64(hi), float64(v))))
}
