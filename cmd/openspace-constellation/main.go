// Command openspace-constellation generates a Walker constellation, renders
// its sub-satellite points as an ASCII world map (the paper's Figure 2(a)
// view) and reports coverage and ISL statistics. With -csv it writes the
// satellite ground positions for external plotting.
//
// Usage:
//
//	openspace-constellation                       # the Iridium reference
//	openspace-constellation -sats 72 -planes 6 -incl 80 -phasing 1
//	openspace-constellation -random 40 -seed 7    # uncoordinated fleets
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"github.com/openspace-project/openspace/internal/experiments"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

func main() {
	sats := flag.Int("sats", 66, "total satellites (walker mode)")
	planes := flag.Int("planes", 6, "orbital planes (walker mode)")
	phasing := flag.Int("phasing", 2, "walker phasing factor F")
	alt := flag.Float64("alt", 780, "altitude in km")
	incl := flag.Float64("incl", 86.4, "inclination in degrees")
	delta := flag.Bool("delta", false, "walker delta (360° node spread) instead of star")
	random := flag.Int("random", 0, "generate N random uncoordinated orbits instead of a walker")
	seed := flag.Int64("seed", 1, "random seed for -random")
	atT := flag.Float64("t", 0, "epoch offset in seconds at which to snapshot")
	mask := flag.Float64("mask", 10, "ground elevation mask in degrees for coverage")
	csvPath := flag.String("csv", "", "write sub-satellite points to this CSV file")
	tlePath := flag.String("tle", "", "export the constellation as a TLE catalogue to this file")
	flag.Parse()

	if err := run(*sats, *planes, *phasing, *alt, *incl, *delta, *random, *seed, *atT, *mask, *csvPath, *tlePath); err != nil {
		fmt.Fprintf(os.Stderr, "openspace-constellation: %v\n", err)
		os.Exit(1)
	}
}

func run(sats, planes, phasing int, alt, incl float64, delta bool, random int, seed int64, atT, mask float64, csvPath, tlePath string) error {
	var c *orbit.Constellation
	var err error
	if random > 0 {
		c = orbit.RandomCircular(random, alt, rand.New(rand.NewSource(seed)))
	} else {
		cfg := orbit.WalkerConfig{
			Name: "custom", TotalSats: sats, Planes: planes, PhasingFactor: phasing,
			AltitudeKm: alt, InclinationDeg: incl, Star: !delta,
		}
		c, err = cfg.Build()
		if err != nil {
			return err
		}
	}

	points := make([]geo.LatLon, c.Len())
	for i, s := range c.Satellites {
		points[i] = s.Elements.SubSatellitePoint(atT)
	}
	renderMap(points)

	caps := c.Footprints(atT, mask)
	exact := geo.ExactCoverageFraction(caps, 10000)
	worst := geo.WorstCaseCoverageFraction(caps)
	fmt.Printf("constellation: %s | %d satellites | %.0f km | t=%.0fs\n",
		c.Name, c.Len(), alt, atT)
	fmt.Printf("coverage @ %.0f° mask: exact %.1f%% | worst-case rule %.1f%%\n",
		mask, exact*100, worst*100)
	period := c.Satellites[0].Elements.PeriodS()
	fmt.Printf("orbital period: %.1f min\n", period/60)

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		rows := make([][]string, len(points))
		for i, p := range points {
			rows[i] = []string{c.Satellites[i].ID,
				fmt.Sprintf("%.4f", p.Lat), fmt.Sprintf("%.4f", p.Lon)}
		}
		if err := experiments.WriteCSV(f, []string{"sat", "lat_deg", "lon_deg"}, rows); err != nil {
			f.Close() //lint:allow errdrop the CSV write error above is the primary failure
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	if tlePath != "" {
		f, err := os.Create(tlePath)
		if err != nil {
			return err
		}
		// Export in the catalogue format the paper's public-orbit argument
		// relies on: any other provider can ingest these lines.
		for i, s := range c.Satellites {
			t := orbit.FromElements(s.ID, 90000+i, s.Elements)
			l1, l2 := t.FormatTLE()
			if _, err := fmt.Fprintf(f, "%s\n%s\n%s\n", s.ID, l1, l2); err != nil {
				f.Close() //lint:allow errdrop the TLE write error above is the primary failure
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d TLE sets)\n", tlePath, c.Len())
	}
	return nil
}

func renderMap(points []geo.LatLon) {
	const width, height = 72, 24
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	for _, p := range points {
		col := int((p.Lon + 180) / 360 * float64(width-1))
		row := int((90 - p.Lat) / 180 * float64(height-1))
		col = clamp(col, 0, width-1)
		row = clamp(row, 0, height-1)
		grid[row][col] = '@'
	}
	for _, line := range grid {
		fmt.Printf("  %s\n", line)
	}
}

func clamp(v, lo, hi int) int {
	return int(math.Max(float64(lo), math.Min(float64(hi), float64(v))))
}
