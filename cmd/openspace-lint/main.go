// Command openspace-lint runs the repository's determinism-contract
// analyzer suite (see internal/lint) over the given package patterns and
// exits non-zero on findings:
//
//	go run ./cmd/openspace-lint ./...
//
// Findings print as file:line:col: analyzer: message, or as one JSON
// object per line with -json (file, line, col, analyzer, message — the
// format CI uploads as an artifact). Intentional exceptions are annotated
// at the site with //lint:allow <analyzer> <reason>. Exit codes: 0 clean,
// 1 findings, 2 load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/openspace-project/openspace/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding instead of text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: openspace-lint [-json] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(lint.Run(".", flag.Args(), *jsonOut, os.Stdout, os.Stderr))
}
