// Command openspace-lint runs the repository's determinism-contract
// analyzer suite (see internal/lint) over the given package patterns and
// exits non-zero on findings:
//
//	go run ./cmd/openspace-lint ./...
//
// Findings print as file:line:col: analyzer: message, or as one JSON
// object per line with -json (file, line, col, analyzer, message — the
// format CI uploads as an artifact). -analyzers a,b,c restricts the run
// to a comma-separated subset of the suite (unknown names are a usage
// error), so CI jobs and local iteration can target one analyzer without
// paying for the rest; //lint:allow directives naming analyzers outside
// the subset stay well-formed and are never reported stale by a subset
// run. Intentional exceptions are annotated at the site with
// //lint:allow <analyzer> <reason>. Exit codes: 0 clean, 1 findings, 2
// load/type-check failure (or an unknown -analyzers name).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/openspace-project/openspace/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding instead of text")
	subset := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: openspace-lint [-json] [-analyzers a,b,c] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	analyzers, err := lint.Select(*subset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Exit(lint.RunSelected(".", flag.Args(), *jsonOut, analyzers, os.Stdout, os.Stderr))
}
