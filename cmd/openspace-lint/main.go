// Command openspace-lint runs the repository's determinism-contract
// analyzer suite (see internal/lint) over the given package patterns and
// exits non-zero on findings:
//
//	go run ./cmd/openspace-lint ./...
//
// Findings print as file:line:col: analyzer: message. Intentional
// exceptions are annotated at the site with //lint:allow <analyzer>
// <reason>. Exit codes: 0 clean, 1 findings, 2 load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/openspace-project/openspace/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: openspace-lint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(lint.Main(".", flag.Args(), os.Stdout, os.Stderr))
}
