// Command openspace-sim runs an end-to-end OpenSpace federation
// simulation: it builds the Iridium reference constellation split across N
// providers, places users at population-weighted world cities, associates
// and authenticates them, drives random transfers through the network for
// the configured duration, and reports latency, accounting and settlement.
//
// Usage:
//
//	openspace-sim -providers 3 -users 12 -transfers 200 -duration 600
//	openspace-sim -aggregate -users 1000000 -duration 600
//	openspace-sim -campaign -quick -csv out.csv -checkpoint run.ckpt
//	openspace-sim -campaign -cell "iridium~i4~iot~dtn"
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"github.com/openspace-project/openspace/internal/campaign"
	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/economics"
	"github.com/openspace-project/openspace/internal/faults"
	"github.com/openspace-project/openspace/internal/fluid"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
	"github.com/openspace-project/openspace/internal/traffic"
)

func main() {
	providers := flag.Int("providers", 3, "number of federated providers")
	users := flag.Int("users", 12, "total users (spread across providers)")
	transfers := flag.Int("transfers", 200, "number of transfers to attempt")
	bytesPer := flag.Int64("bytes", 100_000_000, "bytes per transfer")
	duration := flag.Float64("duration", 600, "simulated seconds")
	seed := flag.Int64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "parallel topology-snapshot workers (0 = one per CPU, 1 = serial); results are identical at any setting")
	scenario := flag.Bool("scenario", false, "drive the workload through the discrete-event engine (Poisson arrivals, automatic handovers) instead of fixed transfer counts")
	aggregate := flag.Bool("aggregate", false, "run in fluid-aggregation mode: -users is an effective population (millions are fine) bucketed into city-pair×class aggregates instead of per-user terminals")
	capacity := flag.Bool("capacity", false, "print a traffic-engineering report (demand matrix, max-min fair allocation, bottleneck) instead of running transfers")
	faultsMode := flag.Bool("faults", false, "inject deterministic faults (satellite failures, ISL flaps, weather, storms) and report per-flow availability, reroutes and scenario robustness")
	intensity := flag.Float64("intensity", 1, "fault-rate multiplier for -faults (0 disables injection)")
	campaignMode := flag.Bool("campaign", false, "run the E17 disrupted-communications campaign matrix (supervised cells, retry, failure manifest)")
	quick := flag.Bool("quick", false, "with -campaign: the 8-cell quick matrix instead of the full 54-cell one")
	cellID := flag.String("cell", "", "with -campaign: run this single cell by ID and print its canonical metrics row")
	checkpoint := flag.String("checkpoint", "", "with -campaign: stream per-cell records to this file as cells complete")
	resume := flag.Bool("resume", false, "with -campaign: load -checkpoint, skip recorded cells, and replay their rows verbatim")
	stopAfter := flag.Int("stop-after", 0, "with -campaign: stop after N pending cells, leaving the rest for -resume (interruption stand-in)")
	keepGoing := flag.Bool("keep-going", false, "with -campaign: exit 0 even when cells fail (failures still land in the manifest)")
	injectPanic := flag.String("inject-panic", "", "with -campaign: cell ID whose run panics — a test hook for supervisor containment")
	csvPath := flag.String("csv", "", "with -campaign: write the results CSV here")
	manifestPath := flag.String("manifest", "", "with -campaign: write the failure manifest here")
	flag.Parse()

	if *campaignMode || *cellID != "" {
		err := runCampaign(campaignOptions{
			quick: *quick, workers: *workers, cellID: *cellID,
			checkpoint: *checkpoint, resume: *resume, stopAfter: *stopAfter,
			keepGoing: *keepGoing, injectPanic: *injectPanic,
			csvPath: *csvPath, manifestPath: *manifestPath,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "openspace-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *aggregate {
		var fcfg faults.Config
		if *faultsMode {
			fcfg = faults.Default().Scale(*intensity)
			fcfg.Seed = *seed
		}
		if err := runAggregate(*providers, *users, *duration, *seed, *workers, fcfg); err != nil {
			fmt.Fprintf(os.Stderr, "openspace-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *faultsMode {
		if err := runFaults(*providers, *users, *duration, *intensity, *seed, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "openspace-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *capacity {
		if err := runCapacity(*providers, *users, *seed, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "openspace-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *scenario {
		if err := runScenario(*providers, *users, *duration, *seed, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "openspace-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*providers, *users, *transfers, *bytesPer, *duration, *seed, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "openspace-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(providers, users, transfers int, bytesPer int64, duration float64, seed int64, workers int) error {
	if providers <= 0 || users <= 0 || transfers <= 0 {
		return fmt.Errorf("providers, users and transfers must be positive")
	}
	c, err := orbit.Iridium().Build()
	if err != nil {
		return err
	}
	fleets := core.SplitConstellation(c, providers, 0.3)
	sites := []geo.LatLon{
		{Lat: 47.6, Lon: -122.3}, {Lat: -1.29, Lon: 36.82}, {Lat: 51.51, Lon: -0.13},
		{Lat: -33.87, Lon: 151.21}, {Lat: 35.68, Lon: 139.69}, {Lat: -23.55, Lon: -46.63},
	}
	pcs := make([]core.ProviderConfig, providers)
	var stationIDs []string
	for p := range pcs {
		gsID := fmt.Sprintf("gs-%d", p)
		stationIDs = append(stationIDs, gsID)
		pcs[p] = core.ProviderConfig{
			ID:            fmt.Sprintf("prov-%d", p),
			Satellites:    fleets[p],
			CarriagePerGB: 0.15 + 0.05*float64(p%3),
			GroundStations: []core.GroundStationConfig{{
				ID: gsID, Pos: sites[p%len(sites)], BackhaulBps: 10e9,
				PricePerGB: 0.05, VisitorSurge: 2,
			}},
		}
	}
	net, err := core.NewNetwork(core.NetworkConfig{
		Providers: pcs, Seed: seed, Topo: topo.Config{Workers: workers},
	})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	positions := sim.CityUsers(users, 30, rng)
	var userIDs []string
	for i, pos := range positions {
		id := fmt.Sprintf("user-%d", i)
		if _, err := net.AddUser(id, fmt.Sprintf("prov-%d", i%providers), pos); err != nil {
			return err
		}
		userIDs = append(userIDs, id)
	}
	if err := net.BuildTopology(0, duration, 60); err != nil {
		return err
	}
	fmt.Printf("federation: %d providers, %d satellites, %d users, %d stations\n",
		providers, c.Len(), users, len(stationIDs))

	associated := 0
	for _, id := range userIDs {
		if err := net.Associate(id, 0); err == nil {
			associated++
		}
	}
	fmt.Printf("associated and authenticated: %d/%d users\n", associated, users)

	var latency sim.Histogram
	var carriage, gateway float64
	delivered := 0
	for i := 0; i < transfers; i++ {
		uid := userIDs[rng.Intn(len(userIDs))]
		gs := stationIDs[rng.Intn(len(stationIDs))]
		t := rng.Float64() * duration
		d, err := net.Send(uid, gs, bytesPer, t)
		if err != nil {
			continue
		}
		delivered++
		latency.Add(d.LatencyS * 1000)
		carriage += d.CarriageUSD
		gateway += d.GatewayFeeUSD
	}
	fmt.Printf("transfers delivered: %d/%d\n", delivered, transfers)
	fmt.Printf("latency ms: mean %.1f | p50 %.1f | p95 %.1f | max %.1f\n",
		latency.Mean(), latency.Quantile(0.5), latency.Quantile(0.95), latency.Max())
	fmt.Printf("fees: carriage $%.2f | gateway $%.2f\n", carriage, gateway)

	// Cross-verify all ledgers, then settle provider 0's books.
	ids := net.Providers()
	disc := 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			disc += len(economics.CrossVerify(net.Provider(ids[i]).Ledger, net.Provider(ids[j]).Ledger))
		}
	}
	fmt.Printf("ledger cross-verification discrepancies: %d\n", disc)
	inv := economics.Settle(net.Provider(ids[0]).Ledger, economics.RateCard{Default: 0.20})
	for _, v := range inv {
		fmt.Printf("  %s bills %s $%.2f (%.2f GB)\n",
			v.Flow.Carrier, v.Flow.Customer, v.AmountUSD, float64(v.Bytes)/1e9)
	}
	for _, pc := range economics.PeeringCandidates(net.Provider(ids[0]).Ledger, bytesPer, 0.3) {
		fmt.Printf("  peering recommended: %s ↔ %s (symmetry %.2f)\n", pc.A, pc.B, pc.Symmetry)
	}
	return nil
}

// runCapacity reports the federation's traffic-engineering picture at t=0:
// the gateway-pair demand matrix the user population induces, the max-min
// fair allocation the constellation can carry, and the bottleneck both the
// allocator and the top pair's max-flow min-cut identify.
func runCapacity(providers, users int, seed int64, workers int) error {
	if providers <= 0 || users <= 0 {
		return fmt.Errorf("providers and users must be positive")
	}
	c, err := orbit.Iridium().Build()
	if err != nil {
		return err
	}
	fleets := core.SplitConstellation(c, providers, 0.3)
	sites := []geo.LatLon{
		{Lat: 47.6, Lon: -122.3}, {Lat: -1.29, Lon: 36.82}, {Lat: 51.51, Lon: -0.13},
		{Lat: -33.87, Lon: 151.21}, {Lat: 35.68, Lon: 139.69}, {Lat: -23.55, Lon: -46.63},
	}
	pcs := make([]core.ProviderConfig, providers)
	var gws []traffic.Gateway
	for p := range pcs {
		gw := traffic.Gateway{ID: fmt.Sprintf("gs-%d", p), Pos: sites[p%len(sites)]}
		gws = append(gws, gw)
		pcs[p] = core.ProviderConfig{
			ID: fmt.Sprintf("prov-%d", p), Satellites: fleets[p], CarriagePerGB: 0.2,
			GroundStations: []core.GroundStationConfig{{
				ID: gw.ID, Pos: gw.Pos, BackhaulBps: 10e9, PricePerGB: 0.05, VisitorSurge: 2,
			}},
		}
	}
	net, err := core.NewNetwork(core.NetworkConfig{
		Providers: pcs, Seed: seed, Topo: topo.Config{Workers: workers},
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	positions := sim.CityUsers(users, 30, rng)
	for i, pos := range positions {
		if _, err := net.AddUser(fmt.Sprintf("user-%d", i), fmt.Sprintf("prov-%d", i%providers), pos); err != nil {
			return err
		}
	}
	if err := net.BuildTopology(0, 60, 60); err != nil {
		return err
	}

	dcfg := traffic.DefaultDemandConfig()
	dcfg.WindowS = 1 // the report is for the t=0 snapshot
	dm, err := traffic.BuildDemandMatrix(gws, c.Satellites, positions, dcfg, rng)
	if err != nil {
		return err
	}
	fmt.Printf("traffic engineering: %d providers, %d satellites, %d users, %d gateways (%d lit)\n",
		providers, c.Len(), users, len(gws), len(dm.LitGateways))
	fmt.Printf("demand matrix: %d gateway pairs, %.2f Gbps offered (%d local users, %d unserved)\n",
		len(dm.Demands), dm.OfferedBps()/1e9, dm.LocalUsers, dm.UnservedUsers)
	if len(dm.Demands) == 0 {
		return nil
	}

	tn := traffic.NewNetwork(net.Topology().At(0))
	tn.Recapacitate(traffic.DefaultCapacityModel())
	alloc, err := traffic.MaxMinFair(tn, dm.Demands, traffic.AllocConfig{KPaths: 4})
	if err != nil {
		return err
	}
	fmt.Printf("max-min fair allocation: %.2f of %.2f Gbps carried (%.0f%%), Jain fairness %.2f\n",
		alloc.CarriedBps()/1e9, alloc.OfferedBps()/1e9, alloc.SatisfiedFraction()*100, alloc.JainIndex())
	if link, util := alloc.MaxUtilization(); util > 0 {
		fmt.Printf("bottleneck link: %s → %s at %.0f%% utilisation\n", link.From, link.To, util*100)
	}
	for i := range alloc.Demands {
		d := &alloc.Demands[i]
		state := "satisfied"
		switch {
		case d.Path == nil:
			state = "unroutable"
		case !d.Satisfied():
			state = fmt.Sprintf("limited by %s→%s", d.Bottleneck.From, d.Bottleneck.To)
		}
		fmt.Printf("  %s → %s: %.0f of %.0f Mbps over %d hops (%s)\n",
			d.Src, d.Dst, d.RateBps/1e6, d.OfferedBps/1e6, len(d.Path)-1, state)
	}

	// Max-flow on the heaviest pair: the hard upper bound any routing
	// scheme could reach, and the physical cut that enforces it.
	top := dm.Demands[0]
	for _, d := range dm.Demands[1:] {
		if d.OfferedBps > top.OfferedBps {
			top = d
		}
	}
	mf, err := traffic.MaxFlow(tn, top.Src, top.Dst)
	if err != nil {
		return err
	}
	fmt.Printf("max flow %s → %s: %.2f Gbps across a %d-link min cut\n",
		top.Src, top.Dst, mf.ValueBps/1e9, len(mf.MinCut))
	return nil
}

// campaignOptions carries the -campaign flag group.
type campaignOptions struct {
	quick        bool
	workers      int
	cellID       string
	checkpoint   string
	resume       bool
	stopAfter    int
	keepGoing    bool
	injectPanic  string
	csvPath      string
	manifestPath string
}

// writeFileVia writes one campaign artifact through the given writer
// function, to a file when path is set or to stdout otherwise.
func writeFileVia(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //lint:allow errdrop the write error above is the primary failure
		return err
	}
	return f.Close()
}

// runCampaign drives the E17 campaign: expand the matrix, supervise
// every cell (panic containment, event budget, bounded retry), degrade
// failures into manifest rows, and honour checkpoint/resume. With
// -cell it runs one cell inline and prints its canonical row instead.
func runCampaign(opts campaignOptions) error {
	spec := campaign.DefaultSpec()
	if opts.quick {
		spec = campaign.QuickSpec()
	}
	if opts.cellID != "" {
		c, ok := spec.Find(opts.cellID)
		if !ok {
			return fmt.Errorf("campaign: no cell %q in the %s matrix", opts.cellID, spec.Name)
		}
		m, err := campaign.RunCell(spec, c)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n%s,%s\n", strings.Join(campaign.MetricFields, ","), c.ID, m.Row())
		return nil
	}

	fn := campaign.CellRunner(spec)
	if opts.injectPanic != "" {
		if _, ok := spec.Find(opts.injectPanic); !ok {
			return fmt.Errorf("campaign: -inject-panic cell %q is not in the %s matrix", opts.injectPanic, spec.Name)
		}
		inner := fn
		fn = func(c campaign.Cell) (campaign.Metrics, error) {
			if c.ID == opts.injectPanic {
				panic("injected test panic in cell " + c.ID)
			}
			return inner(c)
		}
	}

	cfg := campaign.DefaultConfig()
	cfg.Workers = opts.workers
	cfg.CheckpointPath = opts.checkpoint
	cfg.Resume = opts.resume
	cfg.StopAfter = opts.stopAfter
	out, err := campaign.Run(spec, cfg, fn)
	if err != nil {
		return err
	}

	fails := out.Failures()
	fmt.Fprintf(os.Stderr, "campaign %s: %d/%d cells complete, %d failed\n",
		spec.Name, len(out.Cells), len(out.Cells)+len(out.Pending), len(fails))
	if err := writeFileVia(opts.csvPath, out.WriteCSV); err != nil {
		return err
	}
	if opts.manifestPath != "" || len(fails) > 0 {
		if err := writeFileVia(opts.manifestPath, out.WriteManifest); err != nil {
			return err
		}
	}
	if len(fails) > 0 && !opts.keepGoing {
		return fmt.Errorf("campaign: %d cells failed (see manifest); -keep-going to exit 0 anyway", len(fails))
	}
	return nil
}

// buildFederation assembles the Iridium federation with one gateway per
// provider and no users — the shared setup of the engine-driven modes.
func buildFederation(providers int, seed int64, workers int) (*core.Network, error) {
	if providers <= 0 {
		return nil, fmt.Errorf("providers must be positive")
	}
	c, err := orbit.Iridium().Build()
	if err != nil {
		return nil, err
	}
	fleets := core.SplitConstellation(c, providers, 0.3)
	sites := []geo.LatLon{
		{Lat: 47.6, Lon: -122.3}, {Lat: -1.29, Lon: 36.82}, {Lat: 51.51, Lon: -0.13},
		{Lat: -33.87, Lon: 151.21}, {Lat: 35.68, Lon: 139.69}, {Lat: -23.55, Lon: -46.63},
	}
	pcs := make([]core.ProviderConfig, providers)
	for p := range pcs {
		pcs[p] = core.ProviderConfig{
			ID: fmt.Sprintf("prov-%d", p), Satellites: fleets[p], CarriagePerGB: 0.2,
			GroundStations: []core.GroundStationConfig{{
				ID: fmt.Sprintf("gs-%d", p), Pos: sites[p%len(sites)],
				BackhaulBps: 10e9, PricePerGB: 0.05, VisitorSurge: 2,
			}},
		}
	}
	return core.NewNetwork(core.NetworkConfig{
		Providers: pcs, Seed: seed, Topo: topo.Config{Workers: workers},
	})
}

// buildScenarioNetwork adds the city-weighted user population on top of
// buildFederation — the setup of the -scenario and -faults modes.
func buildScenarioNetwork(providers, users int, seed int64, workers int) (*core.Network, error) {
	if users <= 0 {
		return nil, fmt.Errorf("users must be positive")
	}
	net, err := buildFederation(providers, seed, workers)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i, pos := range sim.CityUsers(users, 30, rng) {
		if _, err := net.AddUser(fmt.Sprintf("user-%d", i), fmt.Sprintf("prov-%d", i%providers), pos); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// runAggregate drives the fluid-aggregation scenario: the population never
// materialises as terminals, so -users can be millions without the event
// count growing past O(epochs + fault transitions).
func runAggregate(providers, users int, duration float64, seed int64, workers int, fcfg faults.Config) error {
	if users <= 0 {
		return fmt.Errorf("users must be positive")
	}
	net, err := buildFederation(providers, seed, workers)
	if err != nil {
		return err
	}
	res, err := net.RunScenario(core.Scenario{
		DurationS:         duration,
		SnapshotIntervalS: 60,
		Seed:              seed,
		Faults:            fcfg,
		Aggregate:         fluid.Config{Users: users},
	})
	if err != nil {
		return err
	}
	fr := res.Fluid
	fmt.Printf("fluid scenario over %.0f s: %d effective users in %d epochs\n",
		duration, users, fr.Epochs)
	fmt.Printf("transfers: %d attempted, %d delivered (%.1f%%), %d local, %.2f GB\n",
		fr.TransfersAttempted, fr.TransfersDelivered, fr.DeliveredFraction()*100,
		fr.LocalTransfers, float64(fr.BytesDelivered)/1e9)
	fmt.Printf("carried capacity: %.2f Gbps | latency ms: p50 %.1f p95 %.1f\n",
		fr.CarriedBps()/1e9, fr.Latency.Quantile(0.5)*1000, fr.Latency.Quantile(0.95)*1000)
	for _, cls := range fr.PerClass {
		fmt.Printf("  class %-6s %d/%d delivered | p50 %.1f ms p95 %.1f ms\n",
			cls.Name, cls.TransfersDelivered, cls.TransfersAttempted,
			cls.Latency.Quantile(0.5)*1000, cls.Latency.Quantile(0.95)*1000)
	}
	fmt.Printf("retries %d | recovered %d | abandoned %d | pending %d\n",
		fr.Retries, fr.Recovered, fr.Abandoned, fr.PendingTransfers)
	fmt.Printf("faults: %d transitions | engine events processed: %d\n",
		res.FaultEvents, res.EventsProcessed)
	return nil
}

// runScenario drives the engine-based workload (core.RunScenario).
func runScenario(providers, users int, duration float64, seed int64, workers int) error {
	net, err := buildScenarioNetwork(providers, users, seed, workers)
	if err != nil {
		return err
	}
	res, err := net.RunScenario(core.Scenario{
		DurationS:         duration,
		SnapshotIntervalS: 60,
		PerUserRate:       0.02,
		MinBytes:          1_000_000,
		MaxBytes:          500_000_000,
		Seed:              seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("scenario over %.0f s: %d/%d transfers delivered (%.0f%%), %.2f GB\n",
		duration, res.TransfersDelivered, res.TransfersAttempted,
		res.DeliveryRate()*100, float64(res.BytesDelivered)/1e9)
	fmt.Printf("latency ms: mean %.1f | p95 %.1f\n",
		res.LatencyS.Mean()*1000, res.LatencyS.Quantile(0.95)*1000)
	fmt.Printf("handovers: %d (%d cross-provider) | fees: carriage $%.2f gateway $%.2f\n",
		res.Handovers, res.CrossProviderHandovers, res.CarriageUSD, res.GatewayUSD)
	fmt.Printf("engine events processed: %d\n", res.EventsProcessed)
	return nil
}

// runFaults injects a deterministic fault environment and reports both
// views of robustness: per-flow availability with fast reroute on the
// static t=0 topology, and the full engine scenario where terminals drop,
// re-associate and transfers retry with backoff.
func runFaults(providers, users int, duration, intensity float64, seed int64, workers int) error {
	net, err := buildScenarioNetwork(providers, users, seed, workers)
	if err != nil {
		return err
	}
	fcfg := faults.Default()
	fcfg.Seed = seed
	fcfg = fcfg.Scale(intensity)

	if err := net.BuildTopology(0, duration, 60); err != nil {
		return err
	}
	snap := net.Topology().At(0)
	in := faults.InputsFromSnapshot(snap)
	tl, err := faults.Generate(fcfg, duration, in)
	if err != nil {
		return err
	}
	counts := map[faults.Kind]int{}
	for _, ev := range tl.Events {
		counts[ev.Kind]++
	}
	fmt.Printf("fault timeline over %.0f s at ×%.3g intensity: %d events "+
		"(%d sat failures, %d ISL flaps, %d ground outages, %d storm hits)\n",
		duration, intensity, len(tl.Events),
		counts[faults.KindSatFailure], counts[faults.KindISLFlap],
		counts[faults.KindGroundOutage], counts[faults.KindStorm])

	// Protected flows: each user toward its provider's gateway, with
	// precomputed disjoint backups and fast reroute.
	var specs []faults.FlowSpec
	for i := 0; i < users; i++ {
		uid := fmt.Sprintf("user-%d", i)
		gs := fmt.Sprintf("gs-%d", i%providers)
		specs = append(specs, faults.FlowSpec{ID: uid + "→" + gs, Src: uid, Dst: gs})
	}
	rr, err := faults.RunFlows(snap, specs, tl, faults.DefaultRecovery(), routing.LatencyCost(0))
	if err != nil {
		return err
	}
	fmt.Printf("protected flows (t=0 snapshot, %d fault transitions):\n", rr.FaultTransitions)
	for _, f := range rr.Flows {
		if f.NoPath {
			fmt.Printf("  %-20s no path on the intact topology\n", f.ID)
			continue
		}
		tag := "primary"
		if f.OnBackup {
			tag = "on backup"
		}
		fmt.Printf("  %-20s avail %.6f | %d interruptions | %d fast reroutes | down %.2f s | %s\n",
			f.ID, f.Avail.Availability(rr.HorizonS), f.Avail.Interruptions,
			f.Avail.Reroutes, f.Avail.DowntimeS, tag)
	}

	// Full engine scenario under the same fault environment.
	res, err := net.RunScenario(core.Scenario{
		DurationS:         duration,
		SnapshotIntervalS: 60,
		PerUserRate:       0.02,
		MinBytes:          1_000_000,
		MaxBytes:          500_000_000,
		Seed:              seed,
		Faults:            fcfg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fault scenario over %.0f s: %d/%d transfers delivered (%.0f%%), %.2f GB\n",
		duration, res.TransfersDelivered, res.TransfersAttempted,
		res.DeliveryRate()*100, float64(res.BytesDelivered)/1e9)
	fmt.Printf("faults: %d transitions | %d terminals dropped | %d retries | %d recovered | %d abandoned\n",
		res.FaultEvents, res.DroppedTerminals, res.Retries,
		res.RecoveredTransfers, res.AbandonedTransfers)
	fmt.Printf("handovers: %d (%d cross-provider) | latency ms: mean %.1f p95 %.1f\n",
		res.Handovers, res.CrossProviderHandovers,
		res.LatencyS.Mean()*1000, res.LatencyS.Quantile(0.95)*1000)
	return nil
}
