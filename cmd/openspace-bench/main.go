// Command openspace-bench regenerates the paper's figures and the
// repository's extension experiments (DESIGN.md E1–E13). Each experiment
// prints an ASCII rendering to stdout and, with -csvdir, writes a CSV for
// plotting.
//
// Usage:
//
//	openspace-bench -experiment all
//	openspace-bench -experiment fig2b -csvdir out/
//	openspace-bench -experiment fig2c -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/openspace-project/openspace/internal/campaign"
	"github.com/openspace-project/openspace/internal/experiments"
	"github.com/openspace-project/openspace/internal/geo"
)

// renderer is the common shape of experiment results.
type renderer interface {
	Render(io.Writer) error
	CSV(io.Writer) error
}

func main() {
	experiment := flag.String("experiment", "all",
		"one of: all, or a name from -list")
	csvDir := flag.String("csvdir", "", "directory to write per-experiment CSV files (optional)")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
	workers := flag.Int("workers", 0, "parallel workers per experiment (0 = one per CPU, 1 = serial); results are identical at any setting")
	list := flag.Bool("list", false, "list registered experiments and exit")
	flag.Parse()

	if *list {
		for _, name := range experimentNames() {
			fmt.Println(name)
		}
		return
	}
	if err := run(*experiment, *csvDir, *quick, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "openspace-bench: %v\n", err)
		os.Exit(1)
	}
}

// entry is one registered experiment.
type entry struct {
	name string
	fn   func(quick bool, workers int) (renderer, error)
}

// experimentNames lists the registry in run order, for -list and the
// unknown-experiment error.
func experimentNames() []string {
	names := make([]string, len(experimentTable))
	for i, e := range experimentTable {
		names[i] = e.name
	}
	return names
}

// experimentTable registers every experiment by name.
var experimentTable = []entry{
	{"fig2a", func(quick bool, workers int) (renderer, error) { return experiments.Fig2a(gridSize(quick)) }},
	{"fig2b", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultFig2b()
		if quick {
			cfg.MaxSats, cfg.Step, cfg.Trials = 40, 6, 8
		}
		cfg.Workers = workers
		return experiments.Fig2b(cfg)
	}},
	{"fig2c", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultFig2c()
		if quick {
			cfg.MaxSats, cfg.Step, cfg.Trials, cfg.GridSize = 60, 6, 8, 2000
		}
		cfg.Workers = workers
		return experiments.Fig2c(cfg)
	}},
	{"capacity", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultCapacity()
		if quick {
			cfg.MaxSats, cfg.Step, cfg.Trials, cfg.Users = 40, 8, 3, 120
		}
		cfg.Workers = workers
		return experiments.Capacity(cfg)
	}},
	{"federation", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultFederation()
		if quick {
			cfg.MaxPerFleet, cfg.Step, cfg.GridSize = 12, 4, 2000
		}
		cfg.Workers = workers
		return experiments.Federation(cfg)
	}},
	{"handover", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultHandover()
		if quick {
			cfg.HorizonS = 1200
		}
		cfg.Workers = workers
		return experiments.HandoverExperiment(cfg)
	}},
	{"mac", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultMAC()
		if quick {
			cfg.MaxStations = 12
		}
		cfg.Workers = workers
		return experiments.MACExperiment(cfg)
	}},
	{"economics", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultEcon()
		if quick {
			cfg.Transfers = 40
		}
		cfg.Workers = workers
		return experiments.EconExperiment(cfg)
	}},
	{"links", func(quick bool, workers int) (renderer, error) {
		return experiments.LinksExperiment(experiments.DefaultLinkDistances())
	}},
	{"routingablation", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultRoutingAblation()
		cfg.Workers = workers
		return experiments.RoutingAblation(cfg)
	}},
	{"spectrum", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultSpectrum()
		cfg.Workers = workers
		return experiments.SpectrumExperiment(cfg)
	}},
	{"resilience", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultResilience()
		if quick {
			cfg.MaxFailures, cfg.Step, cfg.Trials = 24, 8, 4
		}
		cfg.Workers = workers
		return experiments.Resilience(cfg)
	}},
	{"dtn", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultDTN()
		if quick {
			cfg.FleetSizes = []int{4, 12}
			cfg.Trials, cfg.HorizonS, cfg.IntervalS = 3, 3*3600, 300
		}
		cfg.Workers = workers
		return experiments.DTNExperiment(cfg)
	}},
	{"incentives", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultIncentives()
		cfg.Workers = workers
		return experiments.IncentivesExperiment(cfg)
	}},
	{"criticalmass", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultCriticalMass()
		if quick {
			cfg.MaxSats, cfg.Step, cfg.Trials = 40, 8, 3
		}
		cfg.Workers = workers
		return experiments.CriticalMass(cfg)
	}},
	{"availability", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultAvailability()
		if quick {
			cfg.Intensities = []float64{0, 1, 4}
			cfg.Trials, cfg.HorizonS = 2, 3600
		}
		cfg.Workers = workers
		return experiments.Availability(cfg)
	}},
	{"capacity-scale", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultCapacityScale()
		if quick {
			// One N=1000 +Grid cell — the CI determinism/smoke workload.
			cfg.MinSats, cfg.MaxSats, cfg.Trials = 1000, 1000, 2
		}
		cfg.Workers = workers
		return experiments.Capacity(cfg)
	}},
	{"users-scale", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultUsersScale()
		if quick {
			// Two cells on a smaller +Grid — the CI determinism workload.
			cfg.Sats = 128
			cfg.UserCounts = []int{10_000, 1_000_000}
			cfg.DurationS = 300
		}
		cfg.Workers = workers
		return experiments.UsersScale(cfg)
	}},
	{"disruption-campaign", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultDisruption()
		if quick {
			// The 8-cell CI determinism matrix.
			cfg.Spec = campaign.QuickSpec()
		}
		cfg.Workers = workers
		return experiments.Disruption(cfg)
	}},
	{"availability-scale", func(quick bool, workers int) (renderer, error) {
		cfg := experiments.DefaultAvailabilityScale()
		if quick {
			// One N=1000 +Grid cell — the CI determinism/smoke workload.
			cfg.GridSats = 1000
			cfg.Intensities = []float64{0, 1}
			cfg.Trials, cfg.HorizonS = 1, 1800
		}
		cfg.Workers = workers
		return experiments.Availability(cfg)
	}},
}

func run(which, csvDir string, quick bool, workers int) error {
	ran := 0
	for _, e := range experimentTable {
		if which != "all" && which != e.name {
			continue
		}
		ran++
		fmt.Printf("=== %s ===\n", e.name)
		res, err := e.fn(quick, workers)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		if err := res.Render(os.Stdout); err != nil {
			return fmt.Errorf("%s: render: %w", e.name, err)
		}
		fmt.Println()
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(csvDir, e.name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := res.CSV(f); err != nil {
				f.Close() //lint:allow errdrop the CSV write error above is the primary failure
				return fmt.Errorf("%s: csv: %w", e.name, err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q (try -list)", which)
	}
	// Hotspot availability is a scalar pair rather than a renderer; print
	// it alongside federation output.
	if which == "all" || which == "federation" {
		hcfg := experiments.DefaultFederation()
		hcfg.Workers = workers
		solo, fed, err := experiments.HotspotScenario(
			hcfg, geo.LatLon{Lat: 7.1, Lon: 125.6}, 500)
		if err != nil {
			return err
		}
		fmt.Printf("hotspot availability (disaster-zone user): best solo %.1f%%, federated %.1f%%\n",
			solo*100, fed*100)
	}
	return nil
}

func gridSize(quick bool) int {
	if quick {
		return 2000
	}
	return 10000
}
