package openspace

// The CI scaling gate: an explicit check that snapshot construction stays
// near-linear in constellation size. The spatial index in internal/topo
// exists so mega-constellation sweeps (E14/E15 at N=4000) are tractable; a
// regression back to the O(N²) pair scan would silently quadruple CI wall
// time long before any correctness test noticed. This test times a +Grid
// Walker-Delta snapshot at N=500 and N=2000 and fails when the wall-time
// ratio exceeds a generous super-linear tolerance.
//
// The gate only runs with OPENSPACE_SCALING_GATE=1 (a dedicated CI job):
// wall-clock assertions are inherently machine-sensitive and have no place
// in the default `go test ./...` run.

import (
	"os"
	"testing"
	"time"

	"github.com/openspace-project/openspace/internal/topo"
)

// scalingGateRatioMax is the N=2000/N=500 wall-time ceiling. Perfectly
// linear construction gives 4×; the O(N²) pair scan gives ~16×. 9× splits
// the two with headroom for constant-factor noise on shared CI runners.
const scalingGateRatioMax = 9.0

// timeSnapshots measures the best-of-3 wall time of `reps` consecutive
// snapshot builds at distinct epochs (so the incremental watch lists see
// realistic churn rather than a cached fast path).
func timeSnapshots(tb testing.TB, n, reps int) time.Duration {
	tb.Helper()
	cfg, specs, grounds, users := gridBuildInputs(tb, n)
	best := time.Duration(0)
	for attempt := 0; attempt < 3; attempt++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			snap := topo.Build(float64(i*15), cfg, specs, grounds, users)
			if snap.NodeCount() < n {
				tb.Fatalf("n=%d: snapshot lost nodes (%d)", n, snap.NodeCount())
			}
		}
		if d := time.Since(start); attempt == 0 || d < best {
			best = d
		}
	}
	return best
}

func TestScalingGateSnapshotBuild(t *testing.T) {
	if os.Getenv("OPENSPACE_SCALING_GATE") != "1" {
		t.Skip("set OPENSPACE_SCALING_GATE=1 to run the wall-time scaling gate")
	}
	const reps = 10
	// Warm up allocator and caches once before the measured runs.
	timeSnapshots(t, 500, 2)

	small := timeSnapshots(t, 500, reps)
	large := timeSnapshots(t, 2000, reps)
	ratio := float64(large) / float64(small)
	t.Logf("snapshot build: N=500 %v, N=2000 %v (%d reps, best of 3) — ratio %.2f (gate %.1f)",
		small, large, reps, ratio, scalingGateRatioMax)
	if ratio > scalingGateRatioMax {
		t.Fatalf("super-linear scaling: 4× satellites cost %.2f× wall time (gate %.1f×); "+
			"did the spatial index regress to a quadratic scan?", ratio, scalingGateRatioMax)
	}
}
