package openspace

// The CI scaling gate: an explicit check that snapshot construction stays
// near-linear in constellation size. The spatial index in internal/topo
// exists so mega-constellation sweeps (E14/E15 at N=4000) are tractable; a
// regression back to the O(N²) pair scan would silently quadruple CI wall
// time long before any correctness test noticed. This test times a +Grid
// Walker-Delta snapshot at N=500 and N=2000 and fails when the wall-time
// ratio exceeds a generous super-linear tolerance.
//
// The gate only runs with OPENSPACE_SCALING_GATE=1 (a dedicated CI job):
// wall-clock assertions are inherently machine-sensitive and have no place
// in the default `go test ./...` run.

import (
	"os"
	"testing"
	"time"

	"github.com/openspace-project/openspace/internal/experiments"
	"github.com/openspace-project/openspace/internal/topo"
)

// scalingGateRatioMax is the N=2000/N=500 wall-time ceiling. Perfectly
// linear construction gives 4×; the O(N²) pair scan gives ~16×. 9× splits
// the two with headroom for constant-factor noise on shared CI runners.
const scalingGateRatioMax = 9.0

// timeSnapshots measures the best-of-3 wall time of `reps` consecutive
// snapshot builds at distinct epochs (so the incremental watch lists see
// realistic churn rather than a cached fast path).
func timeSnapshots(tb testing.TB, n, reps int) time.Duration {
	tb.Helper()
	cfg, specs, grounds, users := gridBuildInputs(tb, n)
	best := time.Duration(0)
	for attempt := 0; attempt < 3; attempt++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			snap := topo.Build(float64(i*15), cfg, specs, grounds, users)
			if snap.NodeCount() < n {
				tb.Fatalf("n=%d: snapshot lost nodes (%d)", n, snap.NodeCount())
			}
		}
		if d := time.Since(start); attempt == 0 || d < best {
			best = d
		}
	}
	return best
}

// usersScaleGateRatioMax bounds the wall-time growth of an E18 cell when
// the effective population grows 1000×. The fluid model's work is
// O(aggregates × epochs), independent of Users: a perfectly flat profile
// gives 1×, a per-flow engine would give ~1000×. 5× leaves room for the
// larger Poisson means and CI-runner noise while still failing hard if
// anything reintroduces per-user work.
const usersScaleGateRatioMax = 5.0

// TestScalingGateUsersScale is the E18 sublinearity gate: serving 10⁷
// users must cost the same order of wall time as serving 10⁴, because the
// aggregation layer never materialises per-user events. Each cell's wall
// time is measured inside the harness (topology construction excluded, so
// the ratio isolates the fluid evolution).
func TestScalingGateUsersScale(t *testing.T) {
	if os.Getenv("OPENSPACE_SCALING_GATE") != "1" {
		t.Skip("set OPENSPACE_SCALING_GATE=1 to run the wall-time scaling gate")
	}
	cfg := experiments.DefaultUsersScale()
	cfg.Sats = 200
	cfg.UserCounts = []int{10_000, 10_000_000}
	cfg.DurationS = 300
	cfg.Workers = 1 // serial: the two cells must not contend for cores
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		r, err := experiments.UsersScale(cfg)
		if err != nil {
			t.Fatal(err)
		}
		small, large := r.WallS(10_000), r.WallS(10_000_000)
		if small <= 0 || large <= 0 {
			t.Fatalf("missing wall-time measurements: %v, %v", small, large)
		}
		ratio := large / small
		t.Logf("users-scale attempt %d: 10⁴ users %.3f s, 10⁷ users %.3f s — ratio %.2f (gate %.1f)",
			attempt, small, large, ratio, usersScaleGateRatioMax)
		if attempt == 0 || ratio < best {
			best = ratio
		}
	}
	if best > usersScaleGateRatioMax {
		t.Fatalf("super-linear user scaling: 1000× users cost %.2f× wall time (gate %.1f×); "+
			"did per-user work leak back into the fluid path?", best, usersScaleGateRatioMax)
	}
}

func TestScalingGateSnapshotBuild(t *testing.T) {
	if os.Getenv("OPENSPACE_SCALING_GATE") != "1" {
		t.Skip("set OPENSPACE_SCALING_GATE=1 to run the wall-time scaling gate")
	}
	const reps = 10
	// Warm up allocator and caches once before the measured runs.
	timeSnapshots(t, 500, 2)

	small := timeSnapshots(t, 500, reps)
	large := timeSnapshots(t, 2000, reps)
	ratio := float64(large) / float64(small)
	t.Logf("snapshot build: N=500 %v, N=2000 %v (%d reps, best of 3) — ratio %.2f (gate %.1f)",
		small, large, reps, ratio, scalingGateRatioMax)
	if ratio > scalingGateRatioMax {
		t.Fatalf("super-linear scaling: 4× satellites cost %.2f× wall time (gate %.1f×); "+
			"did the spatial index regress to a quadratic scan?", ratio, scalingGateRatioMax)
	}
}
