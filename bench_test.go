package openspace

// One benchmark per paper artifact and extension experiment (DESIGN.md's
// per-experiment index). Each benchmark regenerates its figure/table with a
// reduced-but-representative configuration so `go test -bench=.` reproduces
// every result's shape; cmd/openspace-bench runs the full-size sweeps.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"github.com/openspace-project/openspace/internal/experiments"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
	"github.com/openspace-project/openspace/internal/traffic"
)

// BenchmarkFig2aConstellation regenerates Figure 2(a): the reference
// constellation with its coverage and ISL geometry.
func BenchmarkFig2aConstellation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2a(4000)
		if err != nil {
			b.Fatal(err)
		}
		if r.CoverageExact < 0.97 {
			b.Fatalf("coverage regressed: %v", r.CoverageExact)
		}
	}
}

// BenchmarkFig2bLatency regenerates Figure 2(b): propagation latency vs
// constellation size (steep drop, ~tens of ms floor).
func BenchmarkFig2bLatency(b *testing.B) {
	cfg := experiments.DefaultFig2b()
	cfg.MaxSats, cfg.Step, cfg.Trials = 60, 10, 6
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Latency.Points) == 0 {
			b.Fatal("no latency points")
		}
	}
}

// BenchmarkFig2bWorkers measures the parallel harness's speedup on the
// Fig2b sweep. Sub-benchmark names carry the worker count, so
//
//	go test -bench 'Fig2bWorkers' -cpu 4
//
// shows serial vs parallel wall time on the same workload; on a machine
// with ≥4 cores the workers=4 run completes the sweep ≥2× faster than
// workers=1 while producing byte-identical output (the determinism tests
// in internal/experiments pin that equivalence).
func BenchmarkFig2bWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.DefaultFig2b()
			cfg.MaxSats, cfg.Step, cfg.Trials = 60, 10, 6
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig2b(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2cWorkers is the same worker sweep over the Fig2c coverage
// computation, whose per-trial grid scans are the repo's heaviest
// embarrassingly-parallel load.
func BenchmarkFig2cWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.DefaultFig2c()
			cfg.MaxSats, cfg.Step, cfg.Trials, cfg.GridSize = 60, 10, 6, 2000
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig2c(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2cCoverage regenerates Figure 2(c): coverage vs constellation
// size under the worst-case overlap rule.
func BenchmarkFig2cCoverage(b *testing.B) {
	cfg := experiments.DefaultFig2c()
	cfg.MaxSats, cfg.Step, cfg.Trials, cfg.GridSize = 60, 10, 6, 2000
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2c(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.WorstCase.Points) == 0 {
			b.Fatal("no coverage points")
		}
	}
}

// BenchmarkFederationGain regenerates E4: solo vs federated coverage.
func BenchmarkFederationGain(b *testing.B) {
	cfg := experiments.DefaultFederation()
	cfg.MaxPerFleet, cfg.Step, cfg.GridSize = 12, 4, 2000
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Federation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandover regenerates E5: predictive vs re-auth handover.
func BenchmarkHandover(b *testing.B) {
	cfg := experiments.DefaultHandover()
	cfg.HorizonS = 1800
	for i := 0; i < b.N; i++ {
		r, err := experiments.HandoverExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.SpeedupFactor() < 10 {
			b.Fatalf("handover speedup regressed: %v", r.SpeedupFactor())
		}
	}
}

// BenchmarkMAC regenerates E6: CSMA/CA vs TDMA.
func BenchmarkMAC(b *testing.B) {
	cfg := experiments.DefaultMAC()
	cfg.MaxStations = 16
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MACExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedger regenerates E7: ledgers, settlement, peering.
func BenchmarkLedger(b *testing.B) {
	cfg := experiments.DefaultEcon()
	cfg.Transfers = 40
	for i := 0; i < b.N; i++ {
		r, err := experiments.EconExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Discrepancies != 0 {
			b.Fatalf("ledger discrepancies: %d", r.Discrepancies)
		}
	}
}

// BenchmarkLinkBudget regenerates E8: the RF/laser trade table.
func BenchmarkLinkBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.LinksExperiment(experiments.DefaultLinkDistances())
		if err != nil {
			b.Fatal(err)
		}
		if err := r.CSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingAblation regenerates the proactive-vs-on-demand routing
// comparison called out in DESIGN.md's ablation list.
func BenchmarkRoutingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RoutingAblation(experiments.DefaultRoutingAblation())
		if err != nil {
			b.Fatal(err)
		}
		if r.OnDemandMaxUtilization > 1 {
			b.Fatal("on-demand oversubscribed a link")
		}
	}
}

// BenchmarkSpectrum regenerates E13: channel coordination demand.
func BenchmarkSpectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SpectrumExperiment(experiments.DefaultSpectrum()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResilience regenerates E12: connectivity under satellite
// failures.
func BenchmarkResilience(b *testing.B) {
	cfg := experiments.DefaultResilience()
	cfg.MaxFailures, cfg.Step, cfg.Trials = 24, 12, 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Resilience(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvailability regenerates E15: per-flow availability, recovery
// latency and fast-reroute share under swept fault intensity.
func BenchmarkAvailability(b *testing.B) {
	cfg := experiments.DefaultAvailability()
	cfg.Intensities = []float64{0, 2}
	cfg.Trials, cfg.HorizonS = 2, 1800
	for i := 0; i < b.N; i++ {
		r, err := experiments.Availability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Rows[0].Availability != 1 {
			b.Fatalf("fault-free availability regressed: %v", r.Rows[0].Availability)
		}
	}
}

// BenchmarkDTN regenerates E11: store-and-forward vs instant connectivity
// for sparse fleets.
func BenchmarkDTN(b *testing.B) {
	cfg := experiments.DefaultDTN()
	cfg.FleetSizes = []int{4, 12}
	cfg.Trials, cfg.HorizonS, cfg.IntervalS = 2, 3*3600, 300
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DTNExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncentives regenerates E10: the §5(4) membership case.
func BenchmarkIncentives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.IncentivesExperiment(experiments.DefaultIncentives())
		if err != nil {
			b.Fatal(err)
		}
		if r.FederatedAvail < r.SoloAvail {
			b.Fatal("federation lost availability")
		}
	}
}

// BenchmarkCriticalMass regenerates E9: connectivity vs fleet size.
func BenchmarkCriticalMass(b *testing.B) {
	cfg := experiments.DefaultCriticalMass()
	cfg.ProviderCounts = []int{3}
	cfg.MaxSats, cfg.Step, cfg.Trials = 36, 16, 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CriticalMass(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFluidScenario regenerates a reduced E18 cell: one million
// effective users evolved as (city-pair × class) aggregates over a +Grid
// shell. The wall time here is what the per-flow engine would spend on
// roughly 10⁴ users — the subsystem's whole point.
func BenchmarkFluidScenario(b *testing.B) {
	cfg := experiments.DefaultUsersScale()
	cfg.Sats = 100
	cfg.UserCounts = []int{1_000_000}
	cfg.DurationS = 300
	for i := 0; i < b.N; i++ {
		r, err := experiments.UsersScale(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Carried.Points) == 0 {
			b.Fatal("no carried-capacity points")
		}
	}
}

// --- Micro-benchmarks on the hot substrate paths ---

// BenchmarkEngineCalendarQueue measures the event kernel on a churn-heavy
// schedule: a pre-seeded event population plus self-rescheduling ticks, the
// access pattern the calendar queue's O(1) amortized insert/extract exists
// for.
func BenchmarkEngineCalendarQueue(b *testing.B) {
	const events = 50_000
	rng := rand.New(rand.NewSource(7))
	times := make([]float64, events)
	for i := range times {
		times[i] = rng.Float64() * 3600
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		for _, at := range times {
			if err := e.Schedule(at, func(*sim.Engine) {}); err != nil {
				b.Fatal(err)
			}
		}
		var tick func(*sim.Engine)
		tick = func(e *sim.Engine) {
			if next := e.Now() + 15; next < 3600 {
				if err := e.Schedule(next, tick); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := e.Schedule(0, tick); err != nil {
			b.Fatal(err)
		}
		e.Run(3600)
		if e.Processed < events {
			b.Fatalf("processed %d of %d events", e.Processed, events)
		}
	}
}

// BenchmarkPropagation measures two-body position computation, the inner
// loop of every topology build.
func BenchmarkPropagation(b *testing.B) {
	e := orbit.Circular(780, 86.4, 30, 45)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.PositionECEF(float64(i % 6000))
	}
}

// BenchmarkSnapshotBuild measures one 66-satellite topology snapshot.
func BenchmarkSnapshotBuild(b *testing.B) {
	c, err := orbit.Iridium().Build()
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		specs[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
	}
	grounds := []topo.GroundSpec{{ID: "gs", Provider: "p", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}}}
	users := []topo.UserSpec{{ID: "u", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	cfg := topo.DefaultConfig()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = topo.Build(float64(i), cfg, specs, grounds, users)
	}
}

// gridBuildInputs assembles the mega-constellation snapshot inputs: an
// as-square Walker Delta with +Grid laser wiring, one gateway, one user.
func gridBuildInputs(tb testing.TB, n int) (topo.Config, []topo.SatSpec, []topo.GroundSpec, []topo.UserSpec) {
	tb.Helper()
	w, err := orbit.SquareWalkerDelta(n, 550, 53)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := w.Build()
	if err != nil {
		tb.Fatal(err)
	}
	cfg := topo.DefaultConfig()
	if cfg.StaticISLs, err = w.GridISLs(w.DefaultGrid()); err != nil {
		tb.Fatal(err)
	}
	specs := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		specs[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements, HasLaser: true}
	}
	grounds := []topo.GroundSpec{{ID: "gs", Provider: "p", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}}}
	users := []topo.UserSpec{{ID: "u", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	return cfg, specs, grounds, users
}

// BenchmarkSnapshotBuildGrid measures one +Grid mega-constellation snapshot
// at the scaling gate's two sizes. With the spatial index the per-snapshot
// cost is near-linear in N; the CI scaling-gate job asserts that ratio.
func BenchmarkSnapshotBuildGrid(b *testing.B) {
	for _, n := range []int{500, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg, specs, grounds, users := gridBuildInputs(b, n)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = topo.Build(float64(i), cfg, specs, grounds, users)
			}
		})
	}
}

// BenchmarkTimeExpandedIncremental measures the delta-update path: a 30-step
// time-expanded build where consecutive snapshots reuse the Verlet-style
// watch lists instead of re-indexing all N satellites each step.
func BenchmarkTimeExpandedIncremental(b *testing.B) {
	cfg, specs, grounds, users := gridBuildInputs(b, 500)
	cfg.Workers = 1 // isolate the incremental path from fan-out speedup
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topo.BuildTimeExpanded(0, 30*60, 60, cfg, specs, grounds, users); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDijkstra measures one shortest-path query on the full snapshot.
func BenchmarkDijkstra(b *testing.B) {
	c, err := orbit.Iridium().Build()
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		specs[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
	}
	grounds := []topo.GroundSpec{{ID: "gs", Provider: "p", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}}}
	users := []topo.UserSpec{{ID: "u", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	snap := topo.Build(0, topo.DefaultConfig(), specs, grounds, users)
	cost := routing.LatencyCost(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := routing.ShortestPath(snap, "u", "gs", cost); err != nil {
			b.Fatal(err)
		}
	}
}

// iridiumTrafficNetwork builds the Iridium snapshot with two gateways and
// phy-derived capacities: the constellation-scale input for the flow
// benchmarks.
func iridiumTrafficNetwork(b *testing.B) *traffic.Network {
	b.Helper()
	c, err := orbit.Iridium().Build()
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		specs[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements, HasLaser: i%2 == 0}
	}
	grounds := []topo.GroundSpec{
		{ID: "gs-seattle", Provider: "p", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}},
		{ID: "gs-nairobi", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}},
	}
	snap := topo.Build(0, topo.DefaultConfig(), specs, grounds, nil)
	net := traffic.NewNetwork(snap)
	net.Recapacitate(traffic.DefaultCapacityModel())
	return net
}

// smallTrafficNetwork is the hand-sized diamond used to measure solver
// overhead away from graph-size effects.
func smallTrafficNetwork(b *testing.B) *traffic.Network {
	b.Helper()
	nodes := []topo.Node{
		{ID: "s", Kind: topo.KindGroundStation}, {ID: "a", Kind: topo.KindSatellite},
		{ID: "b", Kind: topo.KindSatellite}, {ID: "t", Kind: topo.KindGroundStation},
	}
	var edges []topo.Edge
	for _, e := range [][2]string{{"s", "a"}, {"s", "b"}, {"a", "b"}, {"a", "t"}, {"b", "t"}} {
		edges = append(edges, topo.Edge{
			From: e[0], To: e[1], Kind: topo.LinkISLRF,
			DistanceKm: 1000, DelayS: 0.003, CapacityBps: 10e9,
		})
	}
	snap, err := topo.NewSnapshot(0, nodes, edges)
	if err != nil {
		b.Fatal(err)
	}
	return traffic.NewNetwork(snap)
}

// BenchmarkMaxFlow measures one Dinic max-flow + min-cut solve.
func BenchmarkMaxFlow(b *testing.B) {
	b.Run("small", func(b *testing.B) {
		net := smallTrafficNetwork(b)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := traffic.MaxFlow(net, "s", "t"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iridium", func(b *testing.B) {
		net := iridiumTrafficNetwork(b)
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := traffic.MaxFlow(net, "gs-seattle", "gs-nairobi"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMaxMinFair measures one progressive-filling allocation.
func BenchmarkMaxMinFair(b *testing.B) {
	b.Run("small", func(b *testing.B) {
		net := smallTrafficNetwork(b)
		demands := []traffic.Demand{
			{Src: "s", Dst: "t", OfferedBps: 8e9},
			{Src: "a", Dst: "t", OfferedBps: 8e9},
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := traffic.MaxMinFair(net, demands, traffic.AllocConfig{KPaths: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("iridium", func(b *testing.B) {
		net := iridiumTrafficNetwork(b)
		demands := []traffic.Demand{
			{Src: "gs-seattle", Dst: "gs-nairobi", OfferedBps: 2e9},
			{Src: "gs-nairobi", Dst: "gs-seattle", OfferedBps: 1e9},
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := traffic.MaxMinFair(net, demands, traffic.AllocConfig{KPaths: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEndToEndSend measures one associated Send through a federation.
func BenchmarkEndToEndSend(b *testing.B) {
	net, err := QuickFederation(3, 42)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.AddUser("alice", "prov-0", LatLon{Lat: -1.29, Lon: 36.82}); err != nil {
		b.Fatal(err)
	}
	if err := net.BuildTopology(0, 60, 60); err != nil {
		b.Fatal(err)
	}
	if err := net.Associate("alice", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := net.Send("alice", "gs-0", 1000, 0); err != nil {
			b.Fatal(err)
		}
	}
}
