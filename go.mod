module github.com/openspace-project/openspace

go 1.22
