// Regulation: the paper's §5(3) open problem made concrete. A user in
// Paris operates under a data-residency rule — their traffic may only touch
// the ground inside Europe. The residency filter removes non-compliant
// gateway links at path-computation time, so the compliant route is chosen
// even when a non-European gateway would be faster; licensing and spectrum
// checks round out the jurisdiction model.
package main

import (
	"fmt"
	"log"

	openspace "github.com/openspace-project/openspace"
)

func main() {
	// One provider's Iridium fleet, gateways in Seattle and London.
	c, err := openspace.Iridium().Build()
	if err != nil {
		log.Fatal(err)
	}
	sats := make([]openspace.SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = openspace.SatSpec{ID: s.ID, Provider: "acme", Elements: s.Elements}
	}
	paris := openspace.LatLon{Lat: 48.85, Lon: 2.35}
	users := []openspace.UserSpec{{ID: "user-paris", Provider: "acme", Pos: paris}}
	grounds := []openspace.GroundSpec{
		{ID: "gs-seattle", Provider: "acme", Pos: openspace.LatLon{Lat: 47.6, Lon: -122.3}},
		{ID: "gs-london", Provider: "acme", Pos: openspace.LatLon{Lat: 51.51, Lon: -0.13}},
	}
	snap := openspace.BuildSnapshot(0, openspace.DefaultTopology(), sats, grounds, users)

	atlas := openspace.DefaultAtlas()
	fmt.Println("jurisdictions:", atlas.Regions())
	userRegion := atlas.RegionOf(paris)
	fmt.Printf("user region: %s\n\n", userRegion)

	policy := openspace.RegulatoryPolicy{
		Residency: map[string][]string{"europe": {"europe"}},
		Spectrum:  map[string][]openspace.Band{"europe": {openspace.BandKu}},
		Licenses:  map[string]map[string]bool{"acme": {"europe": true, "north-america": true}},
	}

	// Without the filter: whichever gateway is nearer wins.
	for _, gs := range []string{"gs-seattle", "gs-london"} {
		p, err := openspace.ShortestPath(snap, "user-paris", gs, openspace.LatencyCost(0))
		if err != nil {
			fmt.Printf("unfiltered %s: unreachable\n", gs)
			continue
		}
		fmt.Printf("unfiltered %-10s: %d hops, %.1f ms\n", gs, p.Hops, p.DelayS*1000)
	}

	// With the filter: the Seattle downlink is severed for this user.
	cost := openspace.ResidencyFilter(openspace.LatencyCost(0), atlas, policy, userRegion)
	fmt.Println("\nwith europe-only data residency:")
	for _, gs := range []string{"gs-seattle", "gs-london"} {
		p, err := openspace.ShortestPath(snap, "user-paris", gs, cost)
		if err != nil {
			fmt.Printf("  %-10s: blocked (%s outside permitted regions)\n", gs,
				atlas.RegionOf(snap.Node(gs).Pos.LatLon()))
			continue
		}
		fmt.Printf("  %-10s: %d hops, %.1f ms — compliant\n", gs, p.Hops, p.DelayS*1000)
	}

	// Licensing and spectrum checks.
	fmt.Println("\nlicensing and spectrum:")
	fmt.Printf("  acme licensed to serve europe: %v\n", policy.Licensed("acme", "europe"))
	fmt.Printf("  acme licensed to serve asia:   %v\n", policy.Licensed("acme", "asia"))
	fmt.Printf("  Ku-band ground links in europe: %v\n", policy.BandAllowed("europe", openspace.BandKu))
	fmt.Printf("  Ka-band ground links in europe: %v\n", policy.BandAllowed("europe", openspace.BandKa))
}
