// Handover: compare OpenSpace's predictive successor handover against the
// naive baseline where every satellite change repeats discovery and
// authentication. LEO satellites cross a user's sky in minutes, so this is
// the difference between a usable and an unusable service.
package main

import (
	"fmt"
	"log"

	openspace "github.com/openspace-project/openspace"
)

func main() {
	// The reference constellation, owned by three interleaved firms — so
	// many handovers are also roaming events across providers.
	c, err := openspace.Iridium().Build()
	if err != nil {
		log.Fatal(err)
	}
	sats := make([]openspace.HandoverSat, c.Len())
	for i, s := range c.Satellites {
		sats[i] = openspace.HandoverSat{
			ID:       s.ID,
			Provider: fmt.Sprintf("firm-%d", i%3),
			Elements: s.Elements,
		}
	}
	user := openspace.LatLon{Lat: 40.44, Lon: -79.99} // Pittsburgh
	pred, err := openspace.NewHandoverPredictor(sats, user, 10)
	if err != nil {
		log.Fatal(err)
	}

	const hour = 3600.0
	fast, err := pred.SimulatePredictive(0, hour, openspace.DefaultPredictiveCosts())
	if err != nil {
		log.Fatal(err)
	}
	slow, err := pred.SimulateReauth(0, hour, openspace.DefaultReauthCosts())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one hour of service for a Pittsburgh user (Iridium, 3 firms):")
	fmt.Printf("\n  predictive (OpenSpace): %d handovers, %.2f s total interruption\n",
		fast.HandoverCount, fast.TotalInterruptionS)
	fmt.Printf("  re-association baseline: %d handovers, %.2f s total interruption\n",
		slow.HandoverCount, slow.TotalInterruptionS)
	fmt.Printf("\n  %.0fx less interruption — because successors are picked from public\n",
		slow.TotalInterruptionS/fast.TotalInterruptionS)
	fmt.Println("  orbital knowledge and the roaming certificate makes re-auth unnecessary")

	fmt.Printf("\nfirst handovers of the hour:\n")
	for i, ev := range fast.Events {
		if i >= 5 {
			break
		}
		cross := ""
		if ev.CrossProvider {
			cross = "  (cross-provider roam)"
		}
		fmt.Printf("  t=%6.1fs  %s → %s%s\n", ev.AtS, ev.From, ev.To, cross)
	}
	fmt.Printf("cross-provider handovers: %d of %d — the paper's 'rampant roaming'\n",
		fast.CrossProviderCount, fast.HandoverCount)
}
