// Startup: the paper's incremental-deployment pathway (§4) from day one.
// A brand-new provider has launched just THREE satellites — hopelessly
// below the ~25 needed for continuous paths and the ~50 for full coverage.
// Synchronous Internet service is impossible; but with store-and-forward
// custody (bundles held on board until the next contact), the fleet can
// sell delay-tolerant messaging immediately, and every added satellite
// shrinks the delay.
package main

import (
	"fmt"
	"log"
	"math/rand"

	openspace "github.com/openspace-project/openspace"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	nairobi := openspace.LatLon{Lat: -1.29, Lon: 36.82}
	london := openspace.LatLon{Lat: 51.51, Lon: -0.13}

	users := []openspace.UserSpec{{ID: "clinic-nairobi", Provider: "startup", Pos: nairobi}}
	grounds := []openspace.GroundSpec{{ID: "gw-london", Provider: "startup", Pos: london}}

	for _, fleet := range []int{3, 8, 20} {
		c := openspace.RandomConstellation(fleet, 780, rng)
		sats := make([]openspace.SatSpec, c.Len())
		for i, s := range c.Satellites {
			sats[i] = openspace.SatSpec{ID: s.ID, Provider: "startup", Elements: s.Elements}
		}
		// Six hours of public, precomputable topology.
		te, err := openspace.BuildTimeExpanded(0, 6*3600, 120, openspace.DefaultTopology(), sats, grounds, users)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("fleet of %d satellites:\n", fleet)
		if _, err := openspace.ShortestPath(te.Snaps[0], "clinic-nairobi", "gw-london",
			openspace.LatencyCost(0)); err != nil {
			fmt.Println("  synchronous service: NO instantaneous path Nairobi → London")
		} else {
			fmt.Println("  synchronous service: available right now")
		}

		route, err := openspace.EarliestArrival(te, "clinic-nairobi", "gw-london", 0, 0)
		if err != nil {
			fmt.Println("  store-and-forward: not even custody delivery within 6 h")
			continue
		}
		fmt.Printf("  store-and-forward: delivered in %.0f min over %d hops (%.0f min on-board)\n",
			route.ArrivalS/60, len(route.Hops), route.TotalWaitS/60)
		for _, h := range route.Hops {
			if h.WaitS > 60 {
				fmt.Printf("    bundle waits %5.0f min at %s, then %s → %s\n",
					h.WaitS/60, h.From, h.From, h.To)
			}
		}
		fmt.Println()
	}
	fmt.Println("every launch shrinks the delay; at ~25 satellites the same fleet")
	fmt.Println("starts offering synchronous paths — incremental deployment, not all-or-nothing")
}
