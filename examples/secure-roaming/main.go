// Secure roaming: the paper's §5(6) security baseline in action. A user's
// data crosses satellites owned by providers it never signed up with — so
// it travels sealed end to end (AES-GCM keyed off the subscription secret),
// relays can't read or tamper with it, and a provider caught misbehaving by
// ledger cross-verification is reported, quarantined by quorum, and routed
// around.
package main

import (
	"crypto/ed25519"
	"fmt"
	"log"
	"math/rand"

	openspace "github.com/openspace-project/openspace"
)

func main() {
	// --- End-to-end encryption over untrusted relays ---
	subscriptionSecret := []byte("alice-and-her-home-isp-know-this")
	uplink, err := openspace.NewSecureSession(subscriptionSecret, "alice->home")
	if err != nil {
		log.Fatal(err)
	}
	homeSide, err := openspace.NewSecureSession(subscriptionSecret, "alice->home")
	if err != nil {
		log.Fatal(err)
	}

	routingHeader := []byte("dst=gs-0;flow=77") // relays must read this
	env := uplink.Seal([]byte("my private message"), routingHeader)
	fmt.Printf("alice sends %d ciphertext bytes; relays see only the header %q\n",
		len(env.Ciphertext), routingHeader)

	// A malicious relay flips one bit → the home ISP detects it.
	tampered := env
	tampered.Ciphertext = append([]byte(nil), env.Ciphertext...)
	tampered.Ciphertext[3] ^= 0x01
	if _, err := homeSide.Open(tampered, routingHeader); err != nil {
		fmt.Println("tampered copy rejected:", err)
	}
	// The genuine envelope decrypts; a replay of it does not.
	if msg, err := homeSide.Open(env, routingHeader); err == nil {
		fmt.Printf("home ISP decrypted: %q\n", msg)
	}
	if _, err := homeSide.Open(env, routingHeader); err != nil {
		fmt.Println("replayed copy rejected:", err)
	}

	// --- Bad-actor detection and cutoff ---
	// Three providers exchange report-signing keys when joining OpenSpace.
	reg, err := openspace.NewQuarantineRegistry(2) // two accusers = quarantine
	if err != nil {
		log.Fatal(err)
	}
	keys := map[string]ed25519.PrivateKey{}
	for i, name := range []string{"acme", "orbitco", "skynet"} {
		pub, priv, err := ed25519.GenerateKey(rand.New(rand.NewSource(int64(i + 1))))
		if err != nil {
			log.Fatal(err)
		}
		keys[name] = priv
		reg.AddMember(name, pub)
	}

	// acme's ledger cross-verification catches skynet inflating its
	// carriage claims; orbitco independently sees dropped traffic. Reports
	// are filed in a fixed order so the printed accuser tally is stable.
	evidenceByReporter := map[string]string{
		"acme":    "CrossVerify: skynet claims 2.5 GB carried, our ledger says 2.0 GB",
		"orbitco": "4 of 40 frames handed to skynet never reached the gateway",
	}
	for _, reporter := range []string{"acme", "orbitco"} {
		evidence := evidenceByReporter[reporter]
		kind := openspace.ReportLedgerFraud
		if reporter == "orbitco" {
			kind = openspace.ReportTrafficDrop
		}
		r := openspace.MisbehaviourReport{
			Reporter: reporter, Accused: "skynet", Kind: kind,
			Evidence: evidence, AtS: 1000,
		}
		r.Sign(keys[reporter])
		if err := reg.Submit(r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s files a signed report against skynet (%d/%d accusers)\n",
			reporter, reg.Accusers("skynet"), 2)
	}
	if reg.Quarantined("skynet") {
		fmt.Println("quorum reached: skynet is quarantined — new routes exclude its satellites")
	}
	fmt.Println("quarantined providers:", reg.QuarantinedProviders())
}
