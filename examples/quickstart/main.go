// Quickstart: build a three-provider OpenSpace federation on the paper's
// Iridium-like reference constellation, connect a user in Nairobi, and
// deliver a gigabyte to a gateway in Seattle — association, home-ISP
// authentication, multi-provider routing and per-hop accounting included.
package main

import (
	"fmt"
	"log"

	openspace "github.com/openspace-project/openspace"
)

func main() {
	// Three small firms, each owning a third of the 66-satellite
	// constellation and one gateway ground station.
	net, err := openspace.QuickFederation(3, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("federation members:", net.Providers())

	// A subscriber of prov-0, located in Nairobi.
	if _, err := net.AddUser("alice", "prov-0", openspace.LatLon{Lat: -1.29, Lon: 36.82}); err != nil {
		log.Fatal(err)
	}

	// Precompute the public topology for the next 10 minutes (the paper's
	// proactive routing regime: orbits are public, so every provider can
	// compute the same snapshots).
	if err := net.BuildTopology(0, 600, 60); err != nil {
		log.Fatal(err)
	}

	// Associate: beacon scan, closest-satellite selection, RADIUS-style
	// authentication with the home ISP, roaming certificate issuance.
	if err := net.Associate("alice", 0); err != nil {
		log.Fatal(err)
	}
	sat, provider := net.User("alice").Terminal.Serving()
	fmt.Printf("alice associated with %s (owned by %s)\n", sat, provider)
	if provider != "prov-0" {
		fmt.Println("alice is roaming — served by another provider's satellite")
	}

	// Send 1 GB to the Seattle gateway (gs-0, owned by prov-0).
	d, err := net.Send("alice", "gs-0", 1<<30, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered over %d hops in %.1f ms\n", d.Path.Hops, d.LatencyS*1000)
	fmt.Printf("path: %v\n", d.Path.Nodes)
	fmt.Printf("providers carrying the traffic: %v\n", d.HopOwners)
	fmt.Printf("cross-provider hops: %d | carriage fees $%.3f | gateway fee $%.3f\n",
		d.CrossOwnerHops, d.CarriageUSD, d.GatewayFeeUSD)
}
