// Federation: the paper's core argument in one runnable scenario. Three
// small firms each launch a fleet far too small for global coverage.
// Alone, each covers a patchwork of the Earth; federated through OpenSpace
// they approach continuous coverage — and a disaster-zone user sees the
// difference as hours of connectivity per day.
package main

import (
	"fmt"
	"log"
	"math/rand"

	openspace "github.com/openspace-project/openspace"
)

func main() {
	const (
		providers   = 3
		satsPerFirm = 14
		gridSize    = 10000
	)
	rng := rand.New(rand.NewSource(7))

	// Each firm launches its own uncoordinated random fleet — nobody plans
	// a joint constellation, which is exactly the paper's setting.
	cfgs := make([]openspace.ProviderConfig, providers)
	for p := range cfgs {
		c := openspace.RandomConstellation(satsPerFirm, 780, rng)
		sats := make([]openspace.SatelliteConfig, c.Len())
		for i, s := range c.Satellites {
			sats[i] = openspace.SatelliteConfig{
				ID:       fmt.Sprintf("p%d-%s", p, s.ID),
				Elements: s.Elements,
			}
		}
		cfgs[p] = openspace.ProviderConfig{ID: fmt.Sprintf("firm-%d", p), Satellites: sats}
	}
	net, err := openspace.NewNetwork(openspace.NetworkConfig{Providers: cfgs, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	gain, err := net.FederationGain(0, gridSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("each firm: %d satellites at 780 km\n\n", satsPerFirm)
	for _, id := range net.Providers() {
		fmt.Printf("  %s alone covers %5.1f%% of Earth\n", id, gain.Solo[id]*100)
	}
	fmt.Printf("\n  federated, they cover %5.1f%% — vs best solo %5.1f%%\n",
		gain.Union*100, gain.BestSolo*100)

	// A user in a disaster zone (Mindanao) needs whatever passes overhead:
	// count visibility over a day, solo vs federated.
	hotspot := openspace.LatLon{Lat: 7.1, Lon: 125.6}
	day := 86400.0
	samples := 500
	visible := func(fleets []openspace.ProviderConfig, t float64) bool {
		for _, f := range fleets {
			for _, s := range f.Satellites {
				if s.Elements.Visible(hotspot, t, 10) {
					return true
				}
			}
		}
		return false
	}
	bestSolo, federated := 0, 0
	for i := 0; i < samples; i++ {
		t := day * float64(i) / float64(samples)
		if visible(cfgs, t) {
			federated++
		}
	}
	for p := range cfgs {
		hits := 0
		for i := 0; i < samples; i++ {
			t := day * float64(i) / float64(samples)
			if visible(cfgs[p:p+1], t) {
				hits++
			}
		}
		if hits > bestSolo {
			bestSolo = hits
		}
	}
	fmt.Printf("\ndisaster-zone availability over a day:\n")
	fmt.Printf("  best single firm: %4.1f%% of the time\n", 100*float64(bestSolo)/float64(samples))
	fmt.Printf("  federation:       %4.1f%% of the time\n", 100*float64(federated)/float64(samples))
}
