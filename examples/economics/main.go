// Economics: the §3 cost model end to end. Users of different ISPs push
// traffic through each other's satellites; every provider's ledger tracks
// who carried what; the ledgers cross-verify; bilateral rates settle into
// invoices; and symmetric pairs get a peering recommendation. Finally, the
// capex model shows why splitting a constellation across firms lowers the
// entry barrier.
package main

import (
	"fmt"
	"log"
	"sort"

	openspace "github.com/openspace-project/openspace"
)

func main() {
	net, err := openspace.QuickFederation(3, 11)
	if err != nil {
		log.Fatal(err)
	}
	users := map[string]openspace.LatLon{
		"amina": {Lat: -1.29, Lon: 36.82},  // Nairobi, prov-0
		"bjorn": {Lat: 64.15, Lon: -21.94}, // Reykjavik, prov-1
		"chen":  {Lat: 31.23, Lon: 121.47}, // Shanghai, prov-2
	}
	isps := []string{"prov-0", "prov-1", "prov-2"}
	// Enroll in sorted name order: map iteration order would otherwise
	// reshuffle the user→ISP assignment on every run.
	names := make([]string, 0, len(users))
	for name := range users {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		if _, err := net.AddUser(name, isps[i%3], users[name]); err != nil {
			log.Fatal(err)
		}
	}
	if err := net.BuildTopology(0, 600, 60); err != nil {
		log.Fatal(err)
	}
	for _, name := range names {
		if err := net.Associate(name, 0); err != nil {
			log.Fatal(err)
		}
	}

	// Everyone sends 500 MB to every gateway, twice, across ten minutes.
	const chunk = 500_000_000
	sent := 0
	for round := 0; round < 2; round++ {
		for _, name := range names {
			for g := 0; g < 3; g++ {
				t := float64(round*300 + g*60)
				if _, err := net.Send(name, fmt.Sprintf("gs-%d", g), chunk, t); err == nil {
					sent++
				}
			}
		}
	}
	fmt.Printf("delivered %d transfers of 0.5 GB across 3 providers\n\n", sent)

	// §3: ledgers are cross-verifiable between any pair of members.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			a, b := net.Provider(isps[i]).Ledger, net.Provider(isps[j]).Ledger
			if ds := openspace.CrossVerify(a, b); len(ds) != 0 {
				fmt.Printf("ledger mismatch %s/%s: %v\n", isps[i], isps[j], ds)
			} else {
				fmt.Printf("ledgers %s ↔ %s agree\n", isps[i], isps[j])
			}
		}
	}

	// Settlement at a flat $0.20/GB bilateral rate.
	fmt.Println("\nsettlement (prov-0's books):")
	inv := openspace.Settle(net.Provider("prov-0").Ledger, openspace.RateCard{Default: 0.20})
	for _, v := range inv {
		fmt.Printf("  %s bills %s $%6.2f for %5.2f GB carried\n",
			v.Flow.Carrier, v.Flow.Customer, v.AmountUSD, float64(v.Bytes)/1e9)
	}
	balances := openspace.NetBalances(inv)
	parties := make([]string, 0, len(balances))
	for p := range balances {
		parties = append(parties, p)
	}
	sort.Strings(parties)
	for _, p := range parties {
		fmt.Printf("  net position %s: %+.2f USD\n", p, balances[p])
	}

	// Peering: symmetric mutual carriage should be settled for free.
	for _, pc := range openspace.PeeringCandidates(net.Provider("prov-0").Ledger, chunk, 0.3) {
		fmt.Printf("\npeering recommended: %s ↔ %s (volume symmetry %.2f)\n", pc.A, pc.B, pc.Symmetry)
	}

	// Capex: why democratization works. One firm building all 66 satellites
	// vs six firms building 11 each.
	capex := openspace.DefaultCapex()
	global := openspace.FleetPlan{Satellites: 66, LaserFraction: 0.3, GroundStations: 6}
	full, err := capex.FleetUSD(global)
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := capex.EntryBarrierRatio(global, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncapex: a monolithic 66-satellite system costs $%.0fM up front;\n", full/1e6)
	fmt.Printf("splitting it across 6 OpenSpace firms cuts each firm's outlay %.1fx\n", ratio)
	fmt.Printf("(laser terminal $%.0fk and FCC fee $%.0f per satellite, per the paper)\n",
		capex.LaserTerminalUSD/1e3, capex.RegulatoryFeeUSD)
}
